// Profiling-layer tests (kernel/cycle_accounting.h, util/log2_hist.h wiring,
// tools/trace_export.h).
//
// The centerpiece is the conservation law: cycle attribution is switch-based and
// therefore exhaustive by construction, so over any window the bucket sums must
// equal the elapsed cycles EXACTLY — user + service + capsule + irq + idle +
// kernel == now - anchor, no slack term, no rounding. A two-app workload with
// syscalls, timers, upcalls, and sleep exercises every bucket and the law must
// still hold to the cycle.
//
// The Chrome-trace exporter gets the same golden treatment as the text trace:
// a fixed scenario must serialize byte-for-byte identically run over run, locked
// against a checked-in golden. Regenerate after an intentional change with:
//   TOCK_REGEN_GOLDEN=1 ./build/tests/tock_tests --gtest_filter='Profiler.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "board/sim_board.h"
#include "kernel/cycle_accounting.h"
#include "kernel/trace.h"
#include "tools/trace_export.h"

namespace tock {
namespace {

constexpr uint64_t kCycleBudget = 1'500'000;

// Same fixed two-app workload as trace_test.cc's golden: console writes (IRQ +
// upcall traffic), sleeps (idle + timer traffic), and clean exits.
const char* kAlphaSource = R"(
_start:
    li s1, 3
loop:
    la a0, msg
    li a1, 2
    call console_print
    li a0, 200
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "A\n"
)";

const char* kBetaSource = R"(
_start:
    li s1, 2
loop:
    la a0, msg
    li a1, 2
    call console_print
    li a0, 350
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "B\n"
)";

void BootTwoApps(SimBoard& board) {
  AppSpec alpha;
  alpha.name = "alpha";
  alpha.source = kAlphaSource;
  AppSpec beta;
  beta.name = "beta";
  beta.source = kBetaSource;
  ASSERT_NE(board.installer().Install(alpha), 0u) << board.installer().error();
  ASSERT_NE(board.installer().Install(beta), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 2);
}

TEST(Profiler, CycleAttributionConservesEveryCycle) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  SimBoard board;
  BootTwoApps(board);
  board.Run(kCycleBudget);

  const CycleAccounting& acct = board.kernel().trace().accounting();
  ASSERT_TRUE(acct.begun());
  uint64_t now = board.mcu().CyclesNow();
  CycleAccounting::Snapshot snap = acct.Snap(now);

  // The conservation law, exactly: every cycle since the anchor is in exactly
  // one bucket. EQ on uint64_t — not NEAR, not GE.
  EXPECT_EQ(snap.Total(), snap.Elapsed())
      << "attribution leaked or double-charged cycles: buckets sum to "
      << snap.Total() << " but " << snap.Elapsed() << " elapsed";

  // The workload touches every bucket: both apps ran instructions, both made
  // syscalls, the console/timer raised interrupts, deferred bottom halves ran,
  // and the kernel slept between timer deadlines.
  EXPECT_GT(snap.user[0], 0u) << "alpha's user cycles";
  EXPECT_GT(snap.user[1], 0u) << "beta's user cycles";
  EXPECT_GT(snap.service[0], 0u) << "alpha's kernel-service cycles";
  EXPECT_GT(snap.service[1], 0u) << "beta's kernel-service cycles";
  EXPECT_GT(snap.irq, 0u);
  EXPECT_GT(snap.idle, 0u);
  // capsule and kernel stay 0 here: this board's deferred calls cost no cycles,
  // and Run() issues loop steps back-to-back so no ambient time elapses. The
  // later-snapshot check below proves the ambient kernel bucket does charge.

  // The law holds at any later quiescent point too: cycles ticked after the run
  // land in the ambient kernel bucket, never vanish.
  CycleAccounting::Snapshot later = acct.Snap(now + 12'345);
  EXPECT_EQ(later.Total(), later.Elapsed());
  EXPECT_EQ(later.kernel, snap.kernel + 12'345);
}

TEST(Profiler, ProcStatsRowsMatchKernelState) {
  SimBoard board;
  BootTwoApps(board);
  board.Run(kCycleBudget);

  for (size_t i = 0; i < 2; ++i) {
    ProcStats row = board.kernel().GetProcStats(i);
    const Process& p = *board.kernel().process(i);
    // PCB-backed fields are live in every build configuration.
    EXPECT_EQ(row.syscalls, p.syscall_count) << "slot " << i;
    EXPECT_EQ(row.upcalls, p.upcalls_delivered) << "slot " << i;
    EXPECT_EQ(row.restarts, p.restart_count) << "slot " << i;
    if (KernelTrace::kEnabled) {
      EXPECT_GT(row.user_cycles, 0u) << "slot " << i;
      EXPECT_GT(row.service_cycles, 0u) << "slot " << i;
      // console_print allows a buffer; the driver's grant footprint shows up as
      // a nonzero high-water mark.
      EXPECT_GT(row.grant_high_water, 0u) << "slot " << i;
      // upcall_queue_max can legitimately be 0: a yield-waiting process takes
      // its upcall as a direct return, never through the queue.
      EXPECT_EQ(row.upcall_queue_max, board.kernel().trace().upcall_queue_max(i))
          << "slot " << i;
    }
  }
  // Out-of-range slot: all zeros, no crash.
  ProcStats bad = board.kernel().GetProcStats(Kernel::kMaxProcesses);
  EXPECT_EQ(bad.syscalls, 0u);
  EXPECT_EQ(bad.user_cycles, 0u);
}

TEST(Profiler, LatencyHistogramsPopulate) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  SimBoard board;
  BootTwoApps(board);
  board.Run(kCycleBudget);

  const KernelTrace& trace = board.kernel().trace();
  // Every syscall's service time was measured.
  EXPECT_EQ(trace.syscall_hist().count(), board.kernel().stats().SyscallsTotal());
  EXPECT_GT(trace.syscall_hist().min(), 0u) << "a syscall cannot take zero cycles";
  // Console writes and timer firings complete through IRQ-scheduled upcalls.
  EXPECT_GT(trace.irq_upcall_hist().count(), 0u);
  // sleep_ticks is a split-phase command + yield-wait: round trips were closed.
  EXPECT_GT(trace.command_roundtrip_hist().count(), 0u);
  // A round trip spans the whole sleep; the IRQ->upcall leg is a fraction of it.
  EXPECT_GE(trace.command_roundtrip_hist().max(), trace.irq_upcall_hist().min());
}

TEST(Profiler, SleepArgSaturationIsCountedAndCapped) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  // Direct unit test: a single sleep longer than 2^32 cycles cannot fit the
  // 32-bit event arg. The cycle total stays exact, the arg saturates, and the
  // saturation is counted so the exporter knows to fall back to deltas.
  KernelTrace trace;
  uint64_t huge = (uint64_t{1} << 33) + 17;
  trace.RecordSleep(1000, huge);
  EXPECT_EQ(trace.stats().sleep_cycles, huge);
  EXPECT_EQ(trace.stats().sleep_arg_saturations, 1u);
  trace.RecordSleep(2000, 500);
  EXPECT_EQ(trace.stats().sleep_cycles, huge + 500);
  EXPECT_EQ(trace.stats().sleep_arg_saturations, 1u) << "normal sleeps must not count";
}

// Serializes the fixed two-app scenario to Chrome trace JSON.
std::string ExportTwoApps() {
  SimBoard board;
  AppSpec alpha;
  alpha.name = "alpha";
  alpha.source = kAlphaSource;
  AppSpec beta;
  beta.name = "beta";
  beta.source = kBetaSource;
  EXPECT_NE(board.installer().Install(alpha), 0u) << board.installer().error();
  EXPECT_NE(board.installer().Install(beta), 0u) << board.installer().error();
  EXPECT_EQ(board.Boot(), 2);
  board.Run(kCycleBudget);
  return ExportChromeTrace(board.kernel());
}

TEST(Profiler, ChromeTraceExportIsWellFormed) {
  std::string json = ExportTwoApps();
  // Structural checks that hold in BOTH build configurations: under
  // TOCK_TRACE=OFF the exporter still emits a valid (metadata-only) document.
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("tock-sim"), std::string::npos);
  if (KernelTrace::kEnabled) {
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "no duration spans";
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << "no instant events";
    EXPECT_NE(json.find("proc 0: alpha"), std::string::npos);
    EXPECT_NE(json.find("proc 1: beta"), std::string::npos);
    EXPECT_NE(json.find("\"tockStats\""), std::string::npos);
    EXPECT_NE(json.find("\"tockHists\""), std::string::npos);
  }
}

TEST(Profiler, ChromeTraceExportIsDeterministic) {
  std::string first = ExportTwoApps();
  std::string second = ExportTwoApps();
  EXPECT_EQ(first, second) << "the exporter (or the simulation) is nondeterministic";
}

TEST(Profiler, GoldenChromeTraceTwoApps) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  const std::string golden_path =
      std::string(TOCK_SOURCE_DIR) + "/tests/golden/trace_export_two_apps.json";
  std::string json = ExportTwoApps();

  if (std::getenv("TOCK_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << json;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with TOCK_REGEN_GOLDEN=1)";
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(json, contents.str())
      << "Chrome-trace export diverged from the golden; if intentional, "
         "regenerate with TOCK_REGEN_GOLDEN=1";
}

TEST(Profiler, BoardWritesTraceArtifactAtDestruction) {
  std::string path = ::testing::TempDir() + "tock_trace_artifact.json";
  std::remove(path.c_str());
  {
    BoardConfig config;
    config.trace_export_path = path;
    SimBoard board(config);
    BootTwoApps(board);
    board.Run(kCycleBudget);
  }  // destructor writes the artifact
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "board did not write " << path;
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str().find("{\"displayTimeUnit\""), 0u);
  std::remove(path.c_str());
}

// The conservation law is a property of the attribution mechanism (AcctScope),
// not of any particular scheduling order — so it must hold under every policy the
// pluggable scheduler layer ships, including ones that reorder and re-quantize
// execution (priority, MLFQ) or never preempt at all (cooperative).
class ConservationEveryPolicy : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(ConservationEveryPolicy, CycleAttributionConservesEveryCycle) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  BoardConfig config;
  config.kernel.scheduler.policy = GetParam();
  // Make MLFQ actually demote and boost inside the budget.
  config.kernel.scheduler.mlfq_boost_period_cycles = 200'000;
  SimBoard board(config);
  if (std::getenv("TOCK_SCHED_POLICY") == nullptr) {
    // The env override rewrites a default-policy config, so the round-robin leg
    // legitimately runs another policy under scripts/check_matrix.sh's sweep.
    ASSERT_EQ(board.kernel().scheduler_policy(), GetParam());
  }
  BootTwoApps(board);
  board.Run(kCycleBudget);

  const CycleAccounting& acct = board.kernel().trace().accounting();
  ASSERT_TRUE(acct.begun());
  CycleAccounting::Snapshot snap = acct.Snap(board.mcu().CyclesNow());
  EXPECT_EQ(snap.Total(), snap.Elapsed())
      << SchedulerPolicyName(GetParam()) << " leaked or double-charged cycles: "
      << snap.Total() << " attributed vs " << snap.Elapsed() << " elapsed";
  // Whatever the policy reordered, both apps must still have run and exited.
  EXPECT_GT(snap.user[0], 0u);
  EXPECT_GT(snap.user[1], 0u);
  EXPECT_EQ(board.kernel().NumLiveProcesses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ConservationEveryPolicy,
                         ::testing::Values(SchedulerPolicy::kRoundRobin,
                                           SchedulerPolicy::kCooperative,
                                           SchedulerPolicy::kPriority,
                                           SchedulerPolicy::kMlfq),
                         [](const ::testing::TestParamInfo<SchedulerPolicy>& info) {
                           std::string name = SchedulerPolicyName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Profiler, ConsoleProfAndHistCommands) {
  SimBoard board;
  AppSpec app;
  app.name = "worker";
  app.source = "_start:\nspin:\n    li a0, 10000\n    call sleep_ticks\n    j spin\n";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(kCycleBudget);

  board.uart1_hw().InjectRx("prof\n");
  board.Run(30'000'000);
  const std::string& out = board.uart1_hw().output();
  EXPECT_NE(out.find("user"), std::string::npos) << "console said: '" << out << "'";
  EXPECT_NE(out.find("worker"), std::string::npos);

  board.uart1_hw().InjectRx("hist\n");
  board.Run(30'000'000);
  const std::string& out2 = board.uart1_hw().output();
  EXPECT_NE(out2.find("syscall"), std::string::npos) << "console said: '" << out2 << "'";
  EXPECT_NE(out2.find("roundtrip"), std::string::npos);
}

}  // namespace
}  // namespace tock
