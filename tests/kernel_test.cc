// Kernel-core tests: the Tock 2.0 system call semantics (§3.3), grants (§2.4),
// process lifecycle, fault policy, preemption, and capability-gated management.
#include <gtest/gtest.h>

#include <string>

#include "board/sim_board.h"
#include "capsule/driver_nums.h"

namespace tock {
namespace {

// Runs `source` as the only app on a fresh board until it terminates or the cycle
// budget expires, returning the board for inspection.
class KernelTest : public ::testing::Test {
 protected:
  void BootWith(const std::string& source, BoardConfig config = BoardConfig{}) {
    board_ = std::make_unique<SimBoard>(config);
    AppSpec app;
    app.name = "test-app";
    app.source = source;
    ASSERT_NE(board_->installer().Install(app), 0u) << board_->installer().error();
    ASSERT_EQ(board_->Boot(), 1);
  }

  Process& proc() { return *board_->kernel().process(0); }

  std::unique_ptr<SimBoard> board_;
};

// ---- Allow swapping semantics (§3.3.2, E6) -----------------------------------------------

TEST_F(KernelTest, AllowReturnsPreviousBufferOnSwap) {
  // First allow returns the (0, 0) null buffer; the second returns the first's
  // (addr, len); un-allowing returns the second's.
  BootWith(R"(
_start:
    # result area in RAM at ram_start (a0 at entry)
    mv s0, a0
    # allow_ro(console, 1, ram+256, 16) -> expect old = (0,0)
    li a0, 1
    li a1, 1
    addi a2, s0, 256
    li a3, 16
    li a4, 4
    ecall
    sw a0, 0(s0)    # variant (130 = success 2 u32)
    sw a1, 4(s0)    # old addr
    sw a2, 8(s0)    # old len
    # allow_ro again with a different window -> expect old = (ram+256, 16)
    li a0, 1
    li a1, 1
    addi a2, s0, 512
    li a3, 32
    li a4, 4
    ecall
    sw a1, 12(s0)
    sw a2, 16(s0)
    # un-allow (len 0) -> expect old = (ram+512, 32)
    li a0, 1
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 4
    ecall
    sw a1, 20(s0)
    sw a2, 24(s0)
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  ASSERT_EQ(proc().state, ProcessState::kTerminated);

  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 130u);  // Success2U32
  EXPECT_EQ(word(4), 0u);
  EXPECT_EQ(word(8), 0u);
  EXPECT_EQ(word(12), proc().ram_start + 256);
  EXPECT_EQ(word(16), 16u);
  EXPECT_EQ(word(20), proc().ram_start + 512);
  EXPECT_EQ(word(24), 32u);
}

TEST_F(KernelTest, AllowRejectsBufferOutsideAccessibleRam) {
  BootWith(R"(
_start:
    mv s0, a0
    # try to allow kernel RAM (below our quota)
    li a0, 1
    li a1, 1
    li a2, 0x20000000
    li a3, 16
    li a4, 3
    ecall
    sw a0, 0(s0)   # expect failure variant 2 (failure w/ 2 u32)
    sw a1, 4(s0)   # error code
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 2u);  // Failure2U32
  EXPECT_EQ(word(4), static_cast<uint32_t>(ErrorCode::kInvalid));
}

TEST_F(KernelTest, ReadOnlyAllowAcceptsOwnFlash) {
  // Keys live in flash in root-of-trust apps (§3.3.3): allow-ro of a flash address
  // inside the app's own image must succeed; allow-rw of the same address must not.
  BootWith(R"(
_start:
    mv s0, a0
    la s1, key
    # allow_ro(hmac=0x40003, 0, key-in-flash, 32): should succeed (variant 130)
    li a0, 0x40003
    li a1, 0
    mv a2, s1
    li a3, 32
    li a4, 4
    ecall
    sw a0, 0(s0)
    # allow_rw of flash: must fail (variant 2)
    li a0, 0x40003
    li a1, 1
    mv a2, s1
    li a3, 32
    li a4, 3
    ecall
    sw a0, 4(s0)
    li a0, 0
    call tock_exit_terminate
key:
    .space 32
)");
  board_->Run(1'000'000);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 130u);
  EXPECT_EQ(word(4), 2u);
}

TEST_F(KernelTest, ZeroLengthAllowWithArbitraryAddressIsAccepted) {
  // §5.1.2: the un-allow idiom passes arbitrary (even wild) pointers with length 0;
  // the kernel must accept and never dereference them.
  BootWith(R"(
_start:
    mv s0, a0
    li a0, 1
    li a1, 1
    li a2, 0xDEAD0000   # unmapped, misaligned-ish, definitely invalid as a buffer
    li a3, 0
    li a4, 3
    ecall
    sw a0, 0(s0)
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  uint32_t variant =
      *board_->mcu().bus().Read(proc().ram_start, 4, Privilege::kPrivileged);
  EXPECT_EQ(variant, 130u);  // success
  EXPECT_EQ(proc().state, ProcessState::kTerminated);
}

// ---- Subscribe swapping (§3.3.2) ---------------------------------------------------------

TEST_F(KernelTest, SubscribeReturnsPreviousUpcall) {
  BootWith(R"(
_start:
    mv s0, a0
    # subscribe(alarm=0, sub 0, fn=0x111 (fake but never invoked), ud=0x222)
    li a0, 0
    li a1, 0
    li a2, 0x1110
    li a3, 0x222
    li a4, 1
    ecall
    sw a1, 0(s0)    # old fn = 0 (null upcall)
    sw a2, 4(s0)    # old userdata = 0
    # swap in a new one; expect the old pair back
    li a0, 0
    li a1, 0
    li a2, 0x3330
    li a3, 0x444
    li a4, 1
    ecall
    sw a1, 8(s0)
    sw a2, 12(s0)
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 0u);
  EXPECT_EQ(word(4), 0u);
  EXPECT_EQ(word(8), 0x1110u);
  EXPECT_EQ(word(12), 0x222u);
}

TEST_F(KernelTest, ResubscribeScrubsQueuedUpcallsForOldFunction) {
  // Arm an alarm, let it fire while running (upcall queues), swap the subscription
  // to null, then yield-no-wait: the old handler must NOT run.
  BootWith(R"(
_start:
    mv s0, a0
    sw zero, 0(s0)        # handler-run flag
    # subscribe(alarm, 0, handler, 0)
    li a0, 0
    li a1, 0
    la a2, handler
    li a3, 0
    li a4, 1
    ecall
    # set relative alarm, 2000 ticks
    li a0, 0
    li a1, 5
    li a2, 2000
    li a3, 0
    li a4, 2
    ecall
    # busy-spin well past expiry WITHOUT yielding (upcall stays queued)
    li t0, 900
spin:
    addi t0, t0, -1
    bnez t0, spin
    # unsubscribe (null upcall)
    li a0, 0
    li a1, 0
    li a2, 0
    li a3, 0
    li a4, 1
    ecall
    # yield-no-wait: nothing deliverable may remain
    li a0, 0
    li a4, 0
    ecall
    sw a0, 4(s0)          # flag from yield: 1 if an upcall ran
    li a0, 0
    call tock_exit_terminate
handler:
    li t1, 1
    sw t1, 0(s0)
    jr ra
)");
  board_->Run(5'000'000);
  ASSERT_EQ(proc().state, ProcessState::kTerminated);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 0u) << "scrubbed handler ran anyway";
  EXPECT_EQ(word(4), 0u) << "yield-no-wait claimed an upcall ran";
}

// ---- Yield variants & upcall delivery ------------------------------------------------------

TEST_F(KernelTest, YieldWaitRunsSubscribedHandler) {
  BootWith(R"(
_start:
    mv s0, a0
    # subscribe(alarm, 0, handler, userdata=77)
    li a0, 0
    li a1, 0
    la a2, handler
    li a3, 77
    li a4, 1
    ecall
    # set relative alarm 1000
    li a0, 0
    li a1, 5
    li a2, 1000
    li a3, 0
    li a4, 2
    ecall
    # yield-wait; handler runs with (now, expiration, 0, userdata)
    li a0, 1
    li a4, 0
    ecall
    li a0, 0
    call tock_exit_terminate
handler:
    sw a0, 0(s0)    # now
    sw a1, 4(s0)    # expiration
    sw a3, 8(s0)    # userdata
    jr ra
)");
  board_->Run(5'000'000);
  ASSERT_EQ(proc().state, ProcessState::kTerminated);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_GT(word(0), 1000u);      // now is past the dt
  EXPECT_GE(word(0), word(4));    // fired at/after expiration
  EXPECT_EQ(word(8), 77u);
  EXPECT_EQ(proc().upcalls_delivered, 1u);
}

TEST_F(KernelTest, YieldNoWaitReturnsImmediatelyWhenIdle) {
  BootWith(R"(
_start:
    mv s0, a0
    li a0, 0
    li a4, 0
    ecall            # yield-no-wait with empty queue
    sw a0, 0(s0)     # must be 0
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  EXPECT_EQ(*board_->mcu().bus().Read(proc().ram_start, 4, Privilege::kPrivileged), 0u);
  EXPECT_EQ(proc().state, ProcessState::kTerminated);
}

TEST_F(KernelTest, YieldWaitForDeliversValuesWithoutHandler) {
  // The TRD104 yield-wait-for variant (§3.2): no subscription, no handler — the
  // upcall's values arrive as syscall return values.
  BootWith(R"(
_start:
    mv s0, a0
    # set relative alarm 1500
    li a0, 0
    li a1, 5
    li a2, 1500
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(alarm, 0)
    li a0, 2
    li a1, 0
    li a2, 0
    li a4, 0
    ecall
    sw a0, 0(s0)   # variant: 132 (success 3 u32)
    sw a1, 4(s0)   # arg0 = now
    sw a2, 8(s0)   # arg1 = expiration
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(5'000'000);
  ASSERT_EQ(proc().state, ProcessState::kTerminated);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 132u);
  EXPECT_GT(word(4), 1500u);
}

// ---- Memop ---------------------------------------------------------------------------------

TEST_F(KernelTest, MemopReportsLayoutAndSbrkGrows) {
  BootWith(R"(
_start:
    mv s0, a0
    li a0, 4
    li a4, 5
    ecall            # ram start
    sw a1, 0(s0)
    li a0, 5
    li a4, 5
    ecall            # ram end (break)
    sw a1, 4(s0)
    li a0, 1
    li a1, 1024
    li a4, 5
    ecall            # sbrk(+1024) -> old break
    sw a0, 8(s0)     # variant (129 success u32)
    sw a1, 12(s0)    # old break
    li a0, 5
    li a4, 5
    ecall
    sw a1, 16(s0)    # new break
    li a0, 2
    li a4, 5
    ecall            # flash start
    sw a1, 20(s0)
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  ASSERT_EQ(proc().state, ProcessState::kTerminated);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), proc().ram_start);
  uint32_t initial_break = word(4);
  EXPECT_EQ(word(8), 129u);
  EXPECT_EQ(word(12), initial_break);
  EXPECT_EQ(word(16), initial_break + 1024);
  EXPECT_EQ(word(20), proc().flash_start);
}

TEST_F(KernelTest, SbrkBeyondQuotaFails) {
  BootWith(R"(
_start:
    mv s0, a0
    li a0, 1
    li a1, 0x100000   # 1 MiB, way past the quota
    li a4, 5
    ecall
    sw a0, 0(s0)      # failure variant 0
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  EXPECT_EQ(*board_->mcu().bus().Read(proc().ram_start, 4, Privilege::kPrivileged), 0u);
}

// ---- Exit / restart ---------------------------------------------------------------------------

TEST_F(KernelTest, ExitTerminateRecordsCompletionCode) {
  BootWith(R"(
_start:
    li a0, 0
    li a1, 42
    li a4, 6
    ecall
)");
  board_->Run(1'000'000);
  EXPECT_EQ(proc().state, ProcessState::kTerminated);
  EXPECT_EQ(proc().completion_code, 42u);
}

TEST_F(KernelTest, ExitRestartRunsAgainWithBumpedGeneration) {
  // Writes a flag into RAM, restarts once (checking the flag persists in RAM but
  // state is fresh), then terminates on the second run.
  BootWith(R"(
_start:
    mv s0, a0
    lw t0, 0(s0)
    bnez t0, second_run
    li t0, 1
    sw t0, 0(s0)
    li a0, 1
    li a4, 6
    ecall           # exit-restart
second_run:
    li a0, 0
    li a1, 7
    li a4, 6
    ecall           # terminate(7)
)");
  board_->Run(5'000'000);
  EXPECT_EQ(proc().state, ProcessState::kTerminated);
  EXPECT_EQ(proc().completion_code, 7u);
  EXPECT_EQ(proc().restart_count, 1u);
  EXPECT_EQ(proc().id.generation, 2u);
}

// ---- Fault policy (§2.3) -----------------------------------------------------------------------

TEST_F(KernelTest, MpuViolationFaultsProcessWithStopPolicy) {
  BootWith(R"(
_start:
    li t0, 0x20000000   # kernel RAM: out of bounds for us
    sw t0, 0(t0)
)");
  board_->Run(1'000'000);
  EXPECT_EQ(proc().state, ProcessState::kFaulted);
  EXPECT_EQ(proc().fault_info.vm_fault.kind, VmFault::Kind::kBus);
  EXPECT_EQ(proc().fault_info.vm_fault.bus_fault.kind, BusFaultKind::kMpuViolation);
}

TEST_F(KernelTest, RestartPolicyRestartsFaultingProcess) {
  BoardConfig config;
  config.kernel.default_fault_policy = FaultPolicy::Restart();
  BootWith(R"(
_start:
    mv s0, a0
    lw t0, 0(s0)
    addi t0, t0, 1
    sw t0, 0(s0)       # count runs in RAM (RAM persists across restart)
    li t1, 3
    bge t0, t1, done
    li t0, 0x20000000
    sw t0, 0(t0)       # fault on purpose
done:
    li a0, 0
    call tock_exit_terminate
)",
           config);
  board_->Run(10'000'000);
  EXPECT_EQ(proc().state, ProcessState::kTerminated);
  EXPECT_EQ(proc().restart_count, 2u);
}

TEST_F(KernelTest, FaultyProcessDoesNotHarmNeighbor) {
  // The core isolation claim (§2.3): one app crashing leaves the other fully
  // functional.
  board_ = std::make_unique<SimBoard>();
  AppSpec bad;
  bad.name = "bad";
  bad.source = R"(
_start:
    li t0, 0x20000000
    sw t0, 0(t0)
)";
  AppSpec good;
  good.name = "good";
  good.source = R"(
_start:
    la a0, msg
    li a1, 3
    call console_print
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "ok\n"
)";
  ASSERT_NE(board_->installer().Install(bad), 0u);
  ASSERT_NE(board_->installer().Install(good), 0u);
  ASSERT_EQ(board_->Boot(), 2);
  board_->Run(10'000'000);
  EXPECT_EQ(board_->kernel().process(0)->state, ProcessState::kFaulted);
  EXPECT_EQ(board_->kernel().process(1)->state, ProcessState::kTerminated);
  EXPECT_NE(board_->uart_hw().output().find("ok"), std::string::npos);
}

// ---- Preemption (§2.3: processes are preemptively scheduled) ------------------------------------

TEST_F(KernelTest, InfiniteLoopCannotStarveNeighbor) {
  board_ = std::make_unique<SimBoard>();
  AppSpec hog;
  hog.name = "hog";
  hog.source = R"(
_start:
spin:
    j spin
)";
  AppSpec worker;
  worker.name = "worker";
  worker.source = R"(
_start:
    la a0, msg
    li a1, 5
    call console_print
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "work\n"
)";
  ASSERT_NE(board_->installer().Install(hog), 0u);
  ASSERT_NE(board_->installer().Install(worker), 0u);
  ASSERT_EQ(board_->Boot(), 2);
  board_->Run(10'000'000);
  // Despite the hog never yielding, the timeslice preempts it and the worker runs.
  EXPECT_NE(board_->uart_hw().output().find("work"), std::string::npos);
  EXPECT_GT(board_->kernel().process(0)->timeslice_expirations, 0u);
  EXPECT_EQ(board_->kernel().process(1)->state, ProcessState::kTerminated);
}

// ---- Grants (§2.4, E5) -----------------------------------------------------------------------

TEST_F(KernelTest, GrantsComeFromOwnQuotaAndSurviveReentry) {
  BootWith(R"(
_start:
    # Two console writes force two grant entries for the same process; state must
    # persist between them (tx_pending round trip).
    la a0, msg
    li a1, 2
    call console_print
    la a0, msg
    li a1, 2
    call console_print
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "x\n"
)");
  board_->Run(10'000'000);
  EXPECT_EQ(proc().state, ProcessState::kTerminated);
  // Exactly one ConsoleState + one AlarmState-sized allocation may exist; grant
  // memory is charged to this process, below its quota top.
  EXPECT_GT(proc().grant_bytes_allocated, 0u);
  EXPECT_LT(proc().grant_break, proc().ram_start + proc().ram_size);
  EXPECT_GE(proc().grant_break, proc().app_break);
}

TEST(KernelDirect, GrantStatePersistsAndIsPerProcess) {
  SimBoard board;
  AppSpec a;
  a.name = "a";
  a.source = "_start:\nspin:\n    j spin\n";
  AppSpec b;
  b.name = "b";
  b.source = "_start:\nspin:\n    j spin\n";
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_NE(board.installer().Install(b), 0u);
  ASSERT_EQ(board.Boot(), 2);

  CapabilityFactory factory;
  auto mem_cap = factory.MintMemoryAllocation();
  struct Counter {
    int value = 0;
  };
  Grant<Counter> grant(&board.kernel(), mem_cap);

  ProcessId pa = board.kernel().process(0)->id;
  ProcessId pb = board.kernel().process(1)->id;
  EXPECT_TRUE(grant.Enter(pa, [](Counter& c) { c.value += 5; }).ok());
  EXPECT_TRUE(grant.Enter(pa, [](Counter& c) { c.value += 5; }).ok());
  int a_value = 0, b_value = -1;
  EXPECT_TRUE(grant.Enter(pa, [&](Counter& c) { a_value = c.value; }).ok());
  EXPECT_TRUE(grant.Enter(pb, [&](Counter& c) { b_value = c.value; }).ok());
  EXPECT_EQ(a_value, 10);
  EXPECT_EQ(b_value, 0);  // freshly initialized, not shared
}

TEST(KernelDirect, GrantEntryFailsOnlyForExhaustedProcess) {
  BoardConfig config;
  config.kernel.process_ram_quota = 4096;  // tiny quota
  SimBoard board(config);
  AppSpec a;
  a.name = "a";
  a.source = "_start:\nspin:\n    j spin\n";
  AppSpec b;
  b.name = "b";
  b.source = "_start:\nspin:\n    j spin\n";
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_NE(board.installer().Install(b), 0u);
  ASSERT_EQ(board.Boot(), 2);

  CapabilityFactory factory;
  auto mem_cap = factory.MintMemoryAllocation();
  struct Big {
    uint8_t bytes[1024];
  };
  // Grant ids are a finite board resource; allocate a handful of big grants and
  // exhaust only process a.
  Grant<Big> g0(&board.kernel(), mem_cap);
  Grant<Big> g1(&board.kernel(), mem_cap);
  Grant<Big> g2(&board.kernel(), mem_cap);
  Grant<Big> g3(&board.kernel(), mem_cap);

  ProcessId pa = board.kernel().process(0)->id;
  ProcessId pb = board.kernel().process(1)->id;
  EXPECT_TRUE(g0.Enter(pa, [](Big&) {}).ok());
  EXPECT_TRUE(g1.Enter(pa, [](Big&) {}).ok());
  // Quota is 4096 with half accessible: the third 1 KiB grant cannot fit.
  Result<void> third = g2.Enter(pa, [](Big&) {});
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.error(), ErrorCode::kNoMem);
  // ...but process b is untouched and can still allocate (§2.4's whole point).
  EXPECT_TRUE(g3.Enter(pb, [](Big&) {}).ok());
}

// ---- Capability-gated process management (§4.4) -----------------------------------------------

TEST(KernelDirect, StopAndRestartRequireOnlyTheToken) {
  SimBoard board;
  AppSpec a;
  a.name = "a";
  a.source = "_start:\nspin:\n    j spin\n";
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(5'000);

  ProcessId pid = board.kernel().process(0)->id;
  EXPECT_TRUE(board.kernel().StopProcess(pid, board.pm_cap()).ok());
  EXPECT_EQ(board.kernel().process(0)->state, ProcessState::kTerminated);
  EXPECT_FALSE(board.kernel().IsAlive(pid));

  EXPECT_TRUE(board.kernel().RestartProcess(pid, board.pm_cap()).ok());
  EXPECT_EQ(board.kernel().process(0)->state, ProcessState::kRunnable);
  // The old ProcessId is stale after restart (generation bumped).
  EXPECT_FALSE(board.kernel().IsAlive(pid));
}

// A registry is only trustworthy if double-registration is an error, not a silent
// shadow: with the open-addressed driver map, a second driver under an existing
// number would otherwise occupy a probe slot and win or lose dispatch by hash
// accident. First registration wins; the duplicate is refused.
TEST(KernelDirect, RegisterDriverRejectsDuplicateNumbers) {
  class NullDriver : public SyscallDriver {
   public:
    SyscallReturn Command(ProcessId, uint32_t, uint32_t, uint32_t) override {
      return SyscallReturn::Success();
    }
  };
  SimBoard board;  // the board has already registered the standard driver set
  NullDriver dup;
  NullDriver fresh;
  EXPECT_FALSE(board.kernel().RegisterDriver(DriverNum::kLed, &dup));
  EXPECT_FALSE(board.kernel().RegisterDriver(DriverNum::kAlarm, &dup));  // num 0 occupied too
  EXPECT_TRUE(board.kernel().RegisterDriver(0x7F000, &fresh));
  EXPECT_FALSE(board.kernel().RegisterDriver(0x7F000, &dup));
}

// Process restart must drop predecoded instructions from the previous incarnation.
// The rewrite below pokes the flash backing store directly — deliberately bypassing
// ProgramFlash and therefore the kernel's flash-write observer — so the *only*
// thing that can make the new code visible is ResetForRestart's cache invalidation.
TEST(KernelDirect, RestartDoesNotExecuteStaleDecodesFromThePreviousIncarnation) {
  SimBoard board;
  AppSpec a;
  a.name = "a";
  a.source = R"(
_start:
    mv s0, a0
    li t0, 11
    sw t0, 0(s0)
spin:
    j spin
)";
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(50'000);

  Process* p = board.kernel().process(0);
  ASSERT_NE(p, nullptr);
  uint32_t result_addr = p->ram_start;
  uint8_t word[4];
  ASSERT_TRUE(board.mcu().bus().ReadBlock(result_addr, word, 4));
  EXPECT_EQ(word[0], 11u);  // first incarnation ran (and its decodes are cached)

  // `li t0, 11` expands to `lui t0, 0` (entry+4) + `addi t0, t0, 11` (entry+8).
  // Patch the addi to `addi t0, x0, 22` via the raw flash backdoor — deliberately
  // bypassing the flash-write observer so RestartProcess alone must drop the stale
  // decodes — and scrub the RAM result so a stale re-run is distinguishable.
  uint32_t insn_addr = p->entry_point + 8;
  uint32_t patched = (22u << 20) | (5u << 7) | 0x13u;  // addi t0, x0, 22
  uint8_t patched_bytes[4];
  for (int i = 0; i < 4; ++i) {
    patched_bytes[i] = static_cast<uint8_t>(patched >> (8 * i));
  }
  ASSERT_TRUE(board.mcu().bus().FlashWriteRaw(insn_addr, patched_bytes, 4));
  const uint8_t zeros[4] = {0, 0, 0, 0};
  ASSERT_TRUE(board.mcu().bus().WriteBlock(result_addr, zeros, 4));

  ASSERT_TRUE(board.kernel().RestartProcess(p->id, board.pm_cap()).ok());
  board.Run(50'000);
  ASSERT_TRUE(board.mcu().bus().ReadBlock(result_addr, word, 4));
  EXPECT_EQ(word[0], 22u);  // fresh decode; 11 here means a stale cached insn ran
}

TEST(KernelDirect, StaleProcessIdCannotReachNewIncarnation) {
  SimBoard board;
  AppSpec a;
  a.name = "a";
  a.source = "_start:\nspin:\n    j spin\n";
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_EQ(board.Boot(), 1);

  ProcessId old_pid = board.kernel().process(0)->id;
  ASSERT_TRUE(board.kernel().RestartProcess(old_pid, board.pm_cap()).ok());
  // An upcall scheduled against the stale id must be refused.
  Result<void> result = board.kernel().ScheduleUpcall(old_pid, 0, 0, 1, 2, 3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error(), ErrorCode::kInvalid);
}

// ---- Blocking command (Ti50 fork semantics, §3.2 / E3) -----------------------------------------

TEST_F(KernelTest, BlockingCommandCollapsesTheSequence) {
  BoardConfig config;
  config.kernel.enable_blocking_command = true;
  BootWith(R"(
_start:
    mv s0, a0
    # blocking_command(temp=0x60000, cmd=1 sample, arg=0, completion sub=0)
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 7
    ecall
    sw a0, 0(s0)    # variant 132
    sw a1, 4(s0)    # centi-degrees
    li a0, 0
    call tock_exit_terminate
)",
           config);
  board_->Run(10'000'000);
  ASSERT_EQ(proc().state, ProcessState::kTerminated);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 132u);
  EXPECT_NEAR(static_cast<int32_t>(word(4)), 2150, 30);
  // The whole operation took exactly TWO system calls (blocking command + exit).
  EXPECT_EQ(proc().syscall_count, 2u);
}

TEST_F(KernelTest, BlockingCommandDisabledByDefault) {
  BootWith(R"(
_start:
    mv s0, a0
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 7
    ecall
    sw a0, 0(s0)
    sw a1, 4(s0)
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 0u);  // plain Failure
  EXPECT_EQ(word(4), static_cast<uint32_t>(ErrorCode::kNoSupport));
}

// ---- Unknown driver ------------------------------------------------------------------------------

TEST_F(KernelTest, CommandToMissingDriverFailsWithNoDevice) {
  BootWith(R"(
_start:
    mv s0, a0
    li a0, 0x99999
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    sw a0, 0(s0)
    sw a1, 4(s0)
    li a0, 0
    call tock_exit_terminate
)");
  board_->Run(1'000'000);
  auto word = [&](uint32_t off) {
    return *board_->mcu().bus().Read(proc().ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 0u);
  EXPECT_EQ(word(4), static_cast<uint32_t>(ErrorCode::kNoDevice));
}

}  // namespace
}  // namespace tock
