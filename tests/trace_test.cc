// Kernel trace & counters tests (kernel/trace.h).
//
// The centerpiece is the golden-trace test: the simulation is deterministic, so
// booting the same board with the same two apps over the same cycle budget must
// produce a byte-for-byte identical stats + trace dump — locked in against a
// checked-in golden file. Any change to scheduling, syscall dispatch, upcall
// delivery, or the cost model shows up as a golden diff, which is the point: the
// trace subsystem turns "the kernel behaved differently" into a reviewable diff.
//
// Regenerate the golden after an *intentional* behaviour change with:
//   TOCK_REGEN_GOLDEN=1 ./build/tests/tock_tests --gtest_filter='Trace.GoldenTwoApps'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "board/sim_board.h"
#include "capsule/process_info.h"
#include "kernel/trace.h"

namespace tock {
namespace {

constexpr uint64_t kCycleBudget = 1'500'000;

const char* kAlphaSource = R"(
_start:
    li s1, 3
loop:
    la a0, msg
    li a1, 2
    call console_print
    li a0, 200
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "A\n"
)";

const char* kBetaSource = R"(
_start:
    li s1, 2
loop:
    la a0, msg
    li a1, 2
    call console_print
    li a0, 350
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "B\n"
)";

// Boots a fixed two-app board, runs it for a fixed cycle budget, and returns the
// kernel's full stats + trace dump.
std::string BootTwoAppsAndDump() {
  SimBoard board;
  AppSpec alpha;
  alpha.name = "alpha";
  alpha.source = kAlphaSource;
  AppSpec beta;
  beta.name = "beta";
  beta.source = kBetaSource;
  EXPECT_NE(board.installer().Install(alpha), 0u) << board.installer().error();
  EXPECT_NE(board.installer().Install(beta), 0u) << board.installer().error();
  EXPECT_EQ(board.Boot(), 2);
  board.Run(kCycleBudget);

  std::string dump;
  board.kernel().trace().DumpStats(dump);
  board.kernel().trace().DumpTrace(dump);
  return dump;
}

TEST(Trace, DeterministicAcrossRuns) {
  // Two independent boards, same workload: the dumps must match byte for byte.
  std::string first = BootTwoAppsAndDump();
  std::string second = BootTwoAppsAndDump();
  EXPECT_EQ(first, second) << "the simulation (or the trace layer) is nondeterministic";
}

TEST(Trace, GoldenTwoApps) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  const std::string golden_path =
      std::string(TOCK_SOURCE_DIR) + "/tests/golden/trace_two_apps.txt";
  std::string dump = BootTwoAppsAndDump();

  if (std::getenv("TOCK_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << dump;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with TOCK_REGEN_GOLDEN=1)";
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(dump, contents.str())
      << "kernel behaviour diverged from the golden trace; if intentional, "
         "regenerate with TOCK_REGEN_GOLDEN=1";
}

TEST(Trace, CountersAreInternallyConsistent) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  SimBoard board;
  AppSpec alpha;
  alpha.name = "alpha";
  alpha.source = kAlphaSource;
  ASSERT_NE(board.installer().Install(alpha), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(kCycleBudget);

  const KernelStats& s = board.kernel().stats();
  const KernelTrace& trace = board.kernel().trace();
  // The workload made syscalls, scheduled, slept, and delivered alarm upcalls.
  EXPECT_GT(s.SyscallsTotal(), 0u);
  EXPECT_GT(s.context_switches, 0u);
  EXPECT_GT(s.syscalls_yield, 0u);
  EXPECT_GT(s.upcalls_delivered, 0u);
  EXPECT_GT(s.sleep_entries, 0u);
  // Note: upcalls delivered by direct return (process already parked in yield-wait)
  // never pass through the queue, so delivered can legitimately exceed queued;
  // there is no queued >= delivered invariant.
  // Ring bookkeeping: retained + evicted == everything ever recorded.
  EXPECT_EQ(trace.events().Size() + trace.events().Evicted(),
            trace.events().TotalRecorded());
  // Per-class counters sum to the total.
  uint64_t by_class = s.syscalls_yield + s.syscalls_subscribe + s.syscalls_command +
                      s.syscalls_rw_allow + s.syscalls_ro_allow + s.syscalls_memop +
                      s.syscalls_exit + s.syscalls_blocking_command + s.syscalls_unknown;
  EXPECT_EQ(by_class, s.SyscallsTotal());
}

TEST(Trace, StatsSyscallMatchesKernelStats) {
  // ProcessInfoDriver command 5 is the userspace window onto the same counters; a
  // driver constructed against the live kernel must report exactly StatValue() for
  // every StatId, 64 bits split across the Success2U32 pair.
  SimBoard board;
  AppSpec alpha;
  alpha.name = "alpha";
  alpha.source = kAlphaSource;
  ASSERT_NE(board.installer().Install(alpha), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(kCycleBudget);

  ProcessInfoDriver driver(&board.kernel(), board.pm_cap());
  ProcessId pid = board.kernel().process(0)->id;
  const KernelStats& stats = board.kernel().stats();
  for (uint32_t id = 0; id < static_cast<uint32_t>(StatId::kNumStats); ++id) {
    SyscallReturn ret = driver.Command(pid, 5, id, 0);
    ASSERT_EQ(ret.variant, ReturnVariant::kSuccess2U32) << StatName(static_cast<StatId>(id));
    uint64_t reported = static_cast<uint64_t>(ret.values[0]) |
                        (static_cast<uint64_t>(ret.values[1]) << 32);
    EXPECT_EQ(reported, StatValue(stats, static_cast<StatId>(id)))
        << StatName(static_cast<StatId>(id));
  }
  // Out-of-range StatId answers with the stat count — the discovery idiom, so
  // userspace can size its tables without a separate version handshake.
  SyscallReturn bad = driver.Command(pid, 5, static_cast<uint32_t>(StatId::kNumStats), 0);
  EXPECT_EQ(bad.variant, ReturnVariant::kSuccessU32);
  EXPECT_EQ(bad.values[0], static_cast<uint32_t>(StatId::kNumStats));
}

// Periodic trace-artifact flushing must not perturb the recorded trace. The old
// implementation stepped MainLoop in flush-sized chunks, so a sleep spanning a
// chunk boundary was split into two kSleep fast-forwards (two trace events, two
// sleep entries) — chunked and unchunked runs diverged. Run() now steps against
// the full deadline and flushes at the post-sleep clock, so the flush cadence
// is invisible to the simulation.
TEST(Trace, FlushCadenceDoesNotPerturbTrace) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  auto run = [](uint64_t flush_cycles) {
    BoardConfig config;
    // No export path: the on-disk flush is a no-op, but the chunking the knob
    // used to impose on Run() is exactly what this test pins down.
    config.trace_export_flush_cycles = flush_cycles;
    SimBoard board(config);
    AppSpec app;
    app.name = "napper";
    // Sleeps far longer than the flush period, so each sleep spans several
    // would-be chunk boundaries.
    app.source =
        "_start:\nloop:\n    li a0, 90000\n    call sleep_ticks\n    j loop\n";
    EXPECT_NE(board.installer().Install(app), 0u) << board.installer().error();
    EXPECT_EQ(board.Boot(), 1);
    board.Run(600'000);
    std::string out;
    char head[64];
    std::snprintf(head, sizeof(head), "cycles=%llu insns=%llu\n",
                  static_cast<unsigned long long>(board.mcu().CyclesNow()),
                  static_cast<unsigned long long>(
                      board.kernel().instructions_retired()));
    out = head;
    board.kernel().trace().DumpStats(out);
    board.kernel().trace().DumpTrace(out);
    return out;
  };
  EXPECT_EQ(run(0), run(20'000));
}

TEST(Trace, ProcessConsoleReportsStats) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  // The operator path: typing "stats" on the process-console UART emits the counter
  // digest assembled from the same KernelStats.
  SimBoard board;
  AppSpec app;
  app.name = "worker";
  // Keep one process alive: with no live process the main loop parks and the
  // console's UART would never be serviced.
  app.source = "_start:\nspin:\n    li a0, 10000\n    call sleep_ticks\n    j spin\n";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(kCycleBudget);

  board.uart1_hw().InjectRx("stats\n");
  board.Run(30'000'000);
  const std::string& out = board.uart1_hw().output();
  EXPECT_NE(out.find("syscalls"), std::string::npos) << "console said: '" << out << "'";
  EXPECT_NE(out.find("sleep"), std::string::npos);

  board.uart1_hw().InjectRx("trace\n");
  board.Run(30'000'000);
  EXPECT_NE(board.uart1_hw().output().find("pid="), std::string::npos)
      << "console said: '" << board.uart1_hw().output() << "'";
}

}  // namespace
}  // namespace tock
