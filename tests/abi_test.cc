// ABI v1 vs v2 soundness demonstration (§3.3, experiment E6).
//
// Under the original (v1) semantics, the kernel validated an allowed buffer and
// handed *ownership* of its coordinates to the capsule. A buggy-or-malicious capsule
// could stash the old buffer on re-allow and keep using it — exactly the unsound
// aliasing the paper describes. Under v2 the kernel owns the slot and swaps it; the
// capsule never holds coordinates at all, so the attack is structurally impossible.
#include <gtest/gtest.h>

#include <cstring>

#include "board/sim_board.h"
#include "capsule/process_info.h"

namespace tock {
namespace {

constexpr uint32_t kHoarderDriver = 0x0BAD;

// A capsule with the v1-era bug: it keeps every buffer it has ever been allowed,
// violating the (compiler-unenforceable) contract that re-allow replaces the old one.
class HoarderCapsule : public SyscallDriver {
 public:
  explicit HoarderCapsule(Kernel* kernel) : kernel_(kernel) {}

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)pid;
    (void)arg1;
    (void)arg2;
    return command_num == 0 ? SyscallReturn::Success()
                            : SyscallReturn::Failure(ErrorCode::kNoSupport);
  }

  Result<void> LegacyAllowV1(ProcessId pid, uint32_t allow_num, uint32_t addr,
                             uint32_t len) override {
    (void)pid;
    (void)allow_num;
    // The v1 contract says: replace any previously held buffer. This capsule
    // "forgets" to — it stashes the old one (the compiler cannot stop it, §3.3.1).
    if (held_addr_ != 0) {
      stale_addr_ = held_addr_;
      stale_len_ = held_len_;
    }
    held_addr_ = addr;
    held_len_ = len;
    return Result<void>::Ok();
  }

  // The capsule later writes through its stale reference — state the app believes
  // it owns again exclusively.
  bool ClobberThroughStaleReference() {
    if (stale_addr_ == 0) {
      return false;
    }
    // TRUSTED-BEGIN(test-only v1 aliasing demonstration): direct translation stands
    // in for the raw slice reference a v1 capsule legitimately held.
    uint8_t* p = kernel_->TranslateRam(stale_addr_);
    std::memset(p, 0xEE, stale_len_);
    // TRUSTED-END
    return true;
  }

  bool HoldsStaleBuffer() const { return stale_addr_ != 0; }

 private:
  Kernel* kernel_;
  uint32_t held_addr_ = 0;
  uint32_t held_len_ = 0;
  uint32_t stale_addr_ = 0;
  uint32_t stale_len_ = 0;
};

// App: allows buffer A, then re-allows buffer B (revoking A per the ABI contract),
// then writes a sentinel into A, which it rightfully owns again.
const char* kReallowApp = R"(
_start:
    mv s0, a0
    # allow(driver 0x0BAD, num 0, ram+256, 16)
    li a0, 0x0BAD
    li a1, 0
    addi a2, s0, 256
    li a3, 16
    li a4, 3
    ecall
    # re-allow with a different buffer: A is revoked
    li a0, 0x0BAD
    li a1, 0
    addi a2, s0, 512
    li a3, 16
    li a4, 3
    ecall
    # the app now trusts A again: store sentinel 0x55 bytes
    li t0, 0x55555555
    sw t0, 256(s0)
    sw t0, 260(s0)
    # park
    li a0, 1
    li a4, 0
    ecall
)";

class AbiTest : public ::testing::TestWithParam<SyscallAbiVersion> {};

TEST_P(AbiTest, StaleCapsuleReferencesOnlyExistUnderV1) {
  BoardConfig config;
  config.kernel.abi = GetParam();
  SimBoard board(config);
  HoarderCapsule hoarder(&board.kernel());
  board.kernel().RegisterDriver(kHoarderDriver, &hoarder);

  AppSpec app;
  app.name = "victim";
  app.source = kReallowApp;
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(1'000'000);

  Process& p = *board.kernel().process(0);
  uint32_t buffer_a = p.ram_start + 256;
  auto read_a = [&] {
    return *board.mcu().bus().Read(buffer_a, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(read_a(), 0x55555555u) << "app's own write must land";

  if (GetParam() == SyscallAbiVersion::kV1) {
    // The hoarder kept the revoked buffer and can silently corrupt the app's
    // memory — the soundness hole that forced the 2.0 redesign.
    ASSERT_TRUE(hoarder.HoldsStaleBuffer());
    EXPECT_TRUE(hoarder.ClobberThroughStaleReference());
    EXPECT_EQ(read_a(), 0xEEEEEEEEu) << "v1 aliasing corruption must be observable";
  } else {
    // v2: the kernel never gave the capsule coordinates to keep. No stale state
    // exists anywhere to abuse.
    EXPECT_FALSE(hoarder.HoldsStaleBuffer());
    EXPECT_FALSE(hoarder.ClobberThroughStaleReference());
    EXPECT_EQ(read_a(), 0x55555555u);
  }
}

INSTANTIATE_TEST_SUITE_P(Versions, AbiTest,
                         ::testing::Values(SyscallAbiVersion::kV1, SyscallAbiVersion::kV2));

TEST(AbiOverlap, RuntimeOverlapCheckRejectsAliasedAllows) {
  // §5.1.1: the rejected-design alternative — a runtime check that refuses
  // overlapping read-write allows. Available behind config for experiment E7.
  BoardConfig config;
  config.kernel.check_allow_overlap = true;
  SimBoard board(config);
  AppSpec app;
  app.name = "alias";
  app.source = R"(
_start:
    mv s0, a0
    # allow(console, 1, ram+256, 32)
    li a0, 1
    li a1, 1
    addi a2, s0, 256
    li a3, 32
    li a4, 3
    ecall
    sw a0, 0(s0)
    # allow(rng, 0, ram+272, 32): overlaps the console buffer -> must be rejected
    li a0, 0x40001
    li a1, 0
    addi a2, s0, 272
    li a3, 32
    li a4, 3
    ecall
    sw a0, 4(s0)
    sw a1, 8(s0)
    # non-overlapping allow succeeds
    li a0, 0x40001
    li a1, 0
    addi a2, s0, 320
    li a3, 32
    li a4, 3
    ecall
    sw a0, 12(s0)
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(1'000'000);
  Process& p = *board.kernel().process(0);
  auto word = [&](uint32_t off) {
    return *board.mcu().bus().Read(p.ram_start + off, 4, Privilege::kPrivileged);
  };
  EXPECT_EQ(word(0), 130u);                                     // first allow ok
  EXPECT_EQ(word(4), 2u);                                       // overlap rejected
  EXPECT_EQ(word(8), static_cast<uint32_t>(ErrorCode::kInvalid));
  EXPECT_EQ(word(12), 130u);                                    // disjoint ok
}

TEST(AbiOverlap, DefaultCellSemanticsAcceptOverlap) {
  // The shipped design: overlapping allows are *accepted*; the kernel treats the
  // bytes as interior-mutable cells rather than promising stability (§5.1.1).
  SimBoard board;
  AppSpec app;
  app.name = "alias";
  app.source = R"(
_start:
    mv s0, a0
    li a0, 1
    li a1, 1
    addi a2, s0, 256
    li a3, 32
    li a4, 3
    ecall
    li a0, 0x40001
    li a1, 0
    addi a2, s0, 256
    li a3, 32
    li a4, 3
    ecall
    sw a0, 0(s0)
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(1'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(*board.mcu().bus().Read(p.ram_start, 4, Privilege::kPrivileged), 130u);
}

TEST(AbiDiscovery, ProcessInfoStatIdsAreProbeable) {
  // The stat and proc-stat ABIs are append-only; instead of a version handshake,
  // an out-of-range id answers with the table size. A newer userspace on an older
  // kernel probes once and sizes its tables — no failure path to special-case.
  SimBoard board;
  AppSpec app;
  app.name = "probe";
  app.source = "_start:\nspin:\n    li a0, 10000\n    call sleep_ticks\n    j spin\n";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(1'000'000);
  ProcessInfoDriver driver(&board.kernel(), board.pm_cap());
  ProcessId pid = board.kernel().process(0)->id;

  // Command 5 (kernel stats): every in-range id is a 64-bit read, the first
  // out-of-range id is the count.
  constexpr uint32_t kStatCount = static_cast<uint32_t>(StatId::kNumStats);
  SyscallReturn probe = driver.Command(pid, 5, kStatCount, 0);
  ASSERT_EQ(probe.variant, ReturnVariant::kSuccessU32);
  EXPECT_EQ(probe.values[0], kStatCount);
  probe = driver.Command(pid, 5, UINT32_MAX, 0);
  ASSERT_EQ(probe.variant, ReturnVariant::kSuccessU32);
  EXPECT_EQ(probe.values[0], kStatCount);
  EXPECT_EQ(driver.Command(pid, 5, 0, 0).variant, ReturnVariant::kSuccess2U32);

  // Command 6 (own ProcStats row): same idiom, separate table.
  constexpr uint32_t kFieldCount = static_cast<uint32_t>(ProcStatField::kNumFields);
  probe = driver.Command(pid, 6, kFieldCount, 0);
  ASSERT_EQ(probe.variant, ReturnVariant::kSuccessU32);
  EXPECT_EQ(probe.values[0], kFieldCount);
  for (uint32_t field = 0; field < kFieldCount; ++field) {
    SyscallReturn ret = driver.Command(pid, 6, field, 0);
    ASSERT_EQ(ret.variant, ReturnVariant::kSuccess2U32) << "field " << field;
  }
  // Sanity of the row itself: the app made syscalls, and has never restarted.
  SyscallReturn syscalls =
      driver.Command(pid, 6, static_cast<uint32_t>(ProcStatField::kSyscalls), 0);
  EXPECT_GE(syscalls.values[0], 1u);
  SyscallReturn restarts =
      driver.Command(pid, 6, static_cast<uint32_t>(ProcStatField::kRestarts), 0);
  EXPECT_EQ(restarts.values[0], 0u);
}

}  // namespace
}  // namespace tock
