// Paged copy-on-write board memory (hw/paged_mem.h) and its integration with
// the kernel: paging must be invisible to the simulation — identical results,
// byte for byte, whether a bank is paged or eager — while the host-side
// resident footprint shrinks to the pages a board actually diverged. These
// tests pin the bank semantics (fill reads, page-line straddles, base-image
// sharing, range resets) and the two kernel-visible consequences: decode-cache
// invalidation still flows through ProgramFlash on paged flash, and a process
// restart releases its reclaimed grant pages back to the shared backing.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "board/sim_board.h"
#include "hw/memory_map.h"
#include "hw/paged_mem.h"
#include "libtock/libtock.h"

namespace tock {
namespace {

constexpr uint32_t kPage = PagedBank::kPageSize;

TEST(PagedBankTest, FillReadsAndPageStraddlingAccesses) {
  PagedBank bank(4 * kPage, 0xFF, /*paged=*/true);
  if (bank.paged()) {
    EXPECT_EQ(bank.resident_bytes(), 0u);  // nothing written, nothing committed
  }

  // Reads before any write resolve from the shared fill page — including a read
  // that straddles a page line.
  uint8_t buf[8];
  bank.Read(kPage - 4, buf, sizeof(buf));
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0xFF);
  }

  // A straddling write must land its bytes on both sides of the line and
  // materialize exactly the two touched pages.
  const uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  bank.Write(kPage - 4, data, sizeof(data));
  bank.Read(kPage - 4, buf, sizeof(buf));
  EXPECT_EQ(std::memcmp(buf, data, sizeof(data)), 0);
  if (bank.paged()) {
    EXPECT_EQ(bank.resident_bytes(), 2u * kPage);
  }

  // Neighboring bytes on the materialized pages still read as fill.
  uint8_t b = 0;
  bank.Read(kPage - 5, &b, 1);
  EXPECT_EQ(b, 0xFF);
  bank.Read(kPage + 4, &b, 1);
  EXPECT_EQ(b, 0xFF);
}

TEST(PagedBankTest, ContiguousSpansRefusePageLineCrossings) {
  PagedBank bank(2 * kPage, 0x00, /*paged=*/true);
  if (!bank.paged()) {
    GTEST_SKIP() << "paged paths compiled out (TOCK_PAGED_MEM=OFF)";
  }
  // Within one page: a real borrowed pointer. Across the line: refused, the
  // caller must bounce — this is the contract the kernel's zero-copy
  // translation fast path relies on.
  EXPECT_NE(bank.ContiguousWrite(kPage - 4, 4), nullptr);
  EXPECT_EQ(bank.ContiguousWrite(kPage - 2, 4), nullptr);
  EXPECT_EQ(bank.ContiguousRead(kPage - 2, 4), nullptr);

  // An eager bank is one flat allocation; every span is contiguous.
  PagedBank eager(2 * kPage, 0x00, /*paged=*/false);
  EXPECT_NE(eager.ContiguousWrite(kPage - 2, 4), nullptr);
  EXPECT_EQ(eager.resident_bytes(), eager.size());
}

TEST(PagedBankTest, AdoptedBaseIsSharedUntilFirstWrite) {
  auto base = std::make_shared<std::vector<uint8_t>>(2 * kPage, uint8_t{0xAA});
  (*base)[10] = 0x5A;

  PagedBank writer(2 * kPage, 0xFF, /*paged=*/true);
  PagedBank reader(2 * kPage, 0xFF, /*paged=*/true);
  writer.AdoptBase(base);
  reader.AdoptBase(base);

  uint8_t v = 0;
  writer.Read(10, &v, 1);
  EXPECT_EQ(v, 0x5A);
  reader.Read(10, &v, 1);
  EXPECT_EQ(v, 0x5A);

  // First write diverges the writer's page — a private copy-on-write copy. The
  // reader and the base image itself must never see it.
  const uint8_t patch = 0x11;
  writer.Write(10, &patch, 1);
  writer.Read(10, &v, 1);
  EXPECT_EQ(v, 0x11);
  uint8_t still = 0;
  writer.Read(11, &still, 1);
  EXPECT_EQ(still, 0xAA);  // rest of the page came along in the copy
  reader.Read(10, &v, 1);
  EXPECT_EQ(v, 0x5A);
  EXPECT_EQ((*base)[10], 0x5A);
  if (writer.paged()) {
    EXPECT_EQ(writer.resident_bytes(), kPage);
    EXPECT_EQ(reader.resident_bytes(), 0u);
  }
}

TEST(PagedBankTest, ResetRangeReleasesFullPagesAndRewritesPartials) {
  PagedBank bank(4 * kPage, 0x00, /*paged=*/true);
  const uint8_t mark = 0x77;
  bank.Write(kPage + 5, &mark, 1);
  bank.Write(2 * kPage + 5, &mark, 1);
  if (bank.paged()) {
    EXPECT_EQ(bank.resident_bytes(), 2u * kPage);
  }

  // A reset fully covering page 1 releases it back to the fill backing.
  bank.ResetRange(kPage, kPage);
  uint8_t v = 0xEE;
  bank.Read(kPage + 5, &v, 1);
  EXPECT_EQ(v, 0x00);
  if (bank.paged()) {
    EXPECT_EQ(bank.resident_bytes(), kPage);  // only page 2 remains private
  }

  // A partial reset rewrites in place: the page stays private, untouched bytes
  // survive, the covered bytes return to backing.
  bank.Write(2 * kPage + 100, &mark, 1);
  bank.ResetRange(2 * kPage + 100, 1);
  bank.Read(2 * kPage + 100, &v, 1);
  EXPECT_EQ(v, 0x00);
  bank.Read(2 * kPage + 5, &v, 1);
  EXPECT_EQ(v, mark);
  if (bank.paged()) {
    EXPECT_EQ(bank.resident_bytes(), kPage);
  }
}

// Worker whose loop head sits at entry+4, so a mid-run ProgramFlash can clobber
// an instruction the decode cache has already predecoded many times.
const char* kWorkerApp = R"(
_start:
    mv s0, a0
loop:
    lw t0, 0(s0)
    addi t0, t0, 1
    sw t0, 0(s0)
    li a0, 2000
    call sleep_ticks
    j loop
)";

struct BoardOutcome {
  std::string fingerprint;
  uint64_t resident = 0;
};

BoardOutcome RunWorkerWithMidRunPatch(bool paged) {
  BoardConfig config;
  config.paged_mem = paged;
  SimBoard board(config);
  AppSpec worker;
  worker.name = "worker";
  worker.source = kWorkerApp;
  EXPECT_NE(board.installer().Install(worker), 0u) << board.installer().error();
  EXPECT_EQ(board.Boot(), 1);

  board.Run(100'000);  // warm the decode cache across the loop
  Process* p = board.kernel().process(0);
  EXPECT_NE(p, nullptr);

  // The OTA-shaped divergence: reprogram the loop head through the one modeled
  // flash-write path. On a paged board this is the first flash write, so it
  // must COW the page AND still reach the kernel's decode-invalidation
  // observer — a stale predecode would keep executing the old loop forever.
  const uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_TRUE(board.mcu().bus().ProgramFlash(p->entry_point + 4, zeros, 4));
  board.Run(500'000);
  EXPECT_EQ(p->state, ProcessState::kFaulted);
  EXPECT_EQ(p->fault_info.vm_fault.kind, VmFault::Kind::kIllegalInstruction);

  BoardOutcome out;
  char head[96];
  std::snprintf(head, sizeof(head), "cycles=%llu insns=%llu state=%d\n",
                static_cast<unsigned long long>(board.mcu().CyclesNow()),
                static_cast<unsigned long long>(board.kernel().instructions_retired()),
                static_cast<int>(p->state));
  out.fingerprint = head;
  board.kernel().trace().DumpStats(out.fingerprint);
  board.kernel().trace().DumpTrace(out.fingerprint);
  out.resident = board.mcu().bus().resident_bytes();
  return out;
}

// The parity claim behind every other test in this file: a paged board and an
// eager board running the same app — including a mid-run flash reprogram —
// produce bit-identical stats and trace rings. Only the host-side resident
// footprint may differ.
TEST(PagedParity, PagedBoardMatchesEagerAcrossMidRunFlashProgram) {
  BoardOutcome paged = RunWorkerWithMidRunPatch(/*paged=*/true);
  BoardOutcome eager = RunWorkerWithMidRunPatch(/*paged=*/false);
  EXPECT_EQ(paged.fingerprint, eager.fingerprint);
  EXPECT_EQ(eager.resident,
            uint64_t{MemoryMap::kFlashSize} + MemoryMap::kRamSize);
  if (PagedBank::kCompiled) {
    EXPECT_LT(paged.resident, eager.resident / 4);
  }
}

// A process restart reclaims the grant region (the app-accessible RAM below
// grant_break persists, by contract) — under paging, reclaiming must actually
// RELEASE the fully covered private pages, returning host memory to the
// fleet-shared backing.
TEST(PagedParity, RestartReleasesReclaimedGrantPages) {
  if (!PagedBank::kCompiled) {
    GTEST_SKIP() << "paged paths compiled out (TOCK_PAGED_MEM=OFF)";
  }
  BoardConfig config;
  config.paged_mem = true;
  // Default quota (12 KiB) barely fits the app; give the grant room to span
  // whole pages.
  config.kernel.process_ram_quota = 32 * 1024;
  SimBoard board(config);
  AppSpec app;
  app.name = "sleeper";
  app.source = "_start:\nloop:\n    li a0, 5000\n    call sleep_ticks\n    j loop\n";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(50'000);

  Process* p = board.kernel().process(0);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->IsAlive());

  // Allocate a grant spanning pages and dirty every byte, so the top of the
  // process's RAM quota holds private copy-on-write pages.
  const uint64_t before = board.mcu().bus().resident_bytes();
  bool first_time = false;
  const uint32_t grant_len = 3 * kPage;
  uint32_t grant_addr = board.kernel().GrantEnterResolve(
      p->id, /*grant_id=*/7, grant_len, /*align=*/8, &first_time);
  ASSERT_NE(grant_addr, 0u);
  EXPECT_TRUE(first_time);
  board.kernel().WithRamBytes(grant_addr, grant_len, [&](uint8_t* mem) {
    std::memset(mem, 0xA5, grant_len);
  });
  const uint64_t allocated = board.mcu().bus().resident_bytes();
  EXPECT_GE(allocated, before + 2u * kPage);  // the grant overlaps >= 2 pages

  // Restart: the grant region above grant_break is dead memory (grant pointers
  // cleared, MPU blocks the app) and its full pages go back to the backing.
  // The 8 KiB region contains at least one fully covered 4 KiB page whatever
  // the quota's alignment.
  ASSERT_TRUE(board.kernel().RestartProcess(p->id, board.pm_cap()).ok());
  const uint64_t after = board.mcu().bus().resident_bytes();
  EXPECT_LE(after, allocated - kPage);

  // The revived process keeps running against the released-and-zeroed region.
  board.Run(100'000);
  EXPECT_TRUE(board.kernel().process(0)->IsAlive());
}

}  // namespace
}  // namespace tock
