// Capsule-level integration tests: every userspace driver exercised by real
// assembled applications, plus the multi-board radio path and the grant-based
// resource-isolation scenario of E5.
#include <gtest/gtest.h>

#include <cstring>

#include "board/sim_board.h"
#include "crypto/aes128.h"
#include "crypto/hmac_sha256.h"

namespace tock {
namespace {

uint32_t RamWord(SimBoard& board, Process& p, uint32_t off) {
  return *board.mcu().bus().Read(p.ram_start + off, 4, Privilege::kPrivileged);
}

TEST(CapsuleIntegration, LedsToggleFromUserspace) {
  SimBoard board;
  AppSpec app;
  app.name = "blink";
  app.source = R"(
_start:
    li s1, 6
loop:
    # led toggle(0): command(led=2, 3, 0, 0)
    li a0, 2
    li a1, 3
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # sleep 1000 ticks
    li a0, 1000
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(50'000'000);
  EXPECT_EQ(board.kernel().process(0)->state, ProcessState::kTerminated);
  EXPECT_EQ(board.gpio_hw().output_toggles(SimBoard::kLed0), 6u);
}

TEST(CapsuleIntegration, TempSensorSyncReadReturnsPlausibleValue) {
  SimBoard board;
  board.temp_hw().SetAmbient(-500);  // -5 °C, exercises signed plumbing
  AppSpec app;
  app.name = "temp";
  app.source = R"(
_start:
    mv s0, a0
    call temp_read_sync
    sw a0, 0(s0)
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(10'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_NEAR(static_cast<int32_t>(RamWord(board, p, 0)), -500, 30);
}

TEST(CapsuleIntegration, RngFillsUserBuffer) {
  SimBoard board;
  AppSpec app;
  app.name = "rng";
  app.source = R"(
_start:
    mv s0, a0
    # clear destination
    sw zero, 64(s0)
    sw zero, 68(s0)
    # allow_rw(rng=0x40001, 0, ram+64, 8)
    li a0, 0x40001
    li a1, 0
    addi a2, s0, 64
    li a3, 8
    li a4, 3
    ecall
    # command(rng, 1, 8 bytes, 0)
    li a0, 0x40001
    li a1, 1
    li a2, 8
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(rng, 0) -> a1 = bytes delivered
    li a0, 2
    li a1, 0x40001
    li a2, 0
    li a4, 0
    ecall
    sw a1, 0(s0)
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(10'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 0), 8u);  // delivered count
  // Destination no longer zero (xorshift with a non-zero seed can't emit 8 zero
  // bytes in a row).
  EXPECT_TRUE(RamWord(board, p, 64) != 0 || RamWord(board, p, 68) != 0);
}

TEST(CapsuleIntegration, HmacDriverMatchesHostComputation) {
  SimBoard board;
  AppSpec app;
  app.name = "hmac";
  app.source = R"(
_start:
    mv s0, a0
    # allow_ro(hmac=0x40003, 0 = key in flash, 32)
    li a0, 0x40003
    li a1, 0
    la a2, key
    li a3, 32
    li a4, 4
    ecall
    # allow_ro(hmac, 1 = data in flash, 11)
    li a0, 0x40003
    li a1, 1
    la a2, data
    li a3, 11
    li a4, 4
    ecall
    # allow_rw(hmac, 2 = digest out, ram+64, 32)
    li a0, 0x40003
    li a1, 2
    addi a2, s0, 64
    li a3, 32
    li a4, 3
    ecall
    # command(hmac, 1 = run, len=11, 0)
    li a0, 0x40003
    li a1, 1
    li a2, 11
    li a3, 0
    li a4, 2
    ecall
    sw a0, 0(s0)
    # yield-wait-for(hmac, 0) -> a1 = digest bytes written
    li a0, 2
    li a1, 0x40003
    li a2, 0
    li a4, 0
    ecall
    sw a1, 4(s0)
    li a0, 0
    call tock_exit_terminate
key:
    .byte 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15
    .byte 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31
data:
    .asciz "hello tock"
)";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(20'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 4), 32u);

  uint8_t key[32];
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  auto expected = HmacSha256::Compute(key, 32, reinterpret_cast<const uint8_t*>("hello tock"),
                                      11);
  uint8_t actual[32];
  board.mcu().bus().ReadBlock(p.ram_start + 64, actual, 32);
  EXPECT_EQ(std::memcmp(actual, expected.data(), 32), 0);
}

TEST(CapsuleIntegration, AesCtrRoundTripsThroughDriver) {
  SimBoard board;
  AppSpec app;
  app.name = "aes";
  app.source = R"(
_start:
    mv s0, a0
    # plaintext at ram+64: 16 bytes of 0x41 ('A')
    li t0, 0
    li t1, 16
fill:
    addi t2, s0, 64
    add t2, t2, t0
    li t3, 0x41
    sb t3, 0(t2)
    addi t0, t0, 1
    blt t0, t1, fill
    # allow_ro(aes=0x40006, 0 = key, flash, 16)
    li a0, 0x40006
    li a1, 0
    la a2, key
    li a3, 16
    li a4, 4
    ecall
    # allow_ro(aes, 1 = iv, flash, 16)
    li a0, 0x40006
    li a1, 1
    la a2, iv
    li a3, 16
    li a4, 4
    ecall
    # allow_rw(aes, 2 = data, ram+64, 16)
    li a0, 0x40006
    li a1, 2
    addi a2, s0, 64
    li a3, 16
    li a4, 3
    ecall
    # command(aes, 1 = ctr-crypt, 16, 0); wait
    li a0, 0x40006
    li a1, 1
    li a2, 16
    li a3, 0
    li a4, 2
    ecall
    li a0, 2
    li a1, 0x40006
    li a2, 0
    li a4, 0
    ecall
    li a0, 0
    call tock_exit_terminate
key:
    .byte 0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6
    .byte 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c
iv:
    .byte 0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7
    .byte 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd, 0xfe, 0xff
)";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(20'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);

  uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  uint8_t counter[16] = {0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7,
                         0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd, 0xfe, 0xff};
  uint8_t expected[16];
  std::memset(expected, 0x41, sizeof(expected));
  Aes128 aes(key);
  aes.CtrCrypt(counter, expected, sizeof(expected));

  uint8_t actual[16];
  board.mcu().bus().ReadBlock(p.ram_start + 64, actual, 16);
  EXPECT_EQ(std::memcmp(actual, expected, 16), 0);
}

TEST(CapsuleIntegration, ButtonPressDeliversUpcall) {
  SimBoard board;
  AppSpec app;
  app.name = "button";
  app.source = R"(
_start:
    mv s0, a0
    # subscribe(button=3, 0, handler, 0)
    li a0, 3
    li a1, 0
    la a2, handler
    li a3, 0
    li a4, 1
    ecall
    # enable events for button 0: command(3, 1, 0, 0)
    li a0, 3
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait
    li a0, 1
    li a4, 0
    ecall
    li a0, 0
    call tock_exit_terminate
handler:
    sw a0, 0(s0)    # button index
    sw a1, 4(s0)    # level (1 = pressed)
    li t0, 1
    sw t0, 8(s0)
    jr ra
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(100'000);  // app subscribes and parks in yield

  board.gpio_hw().SetInput(SimBoard::kButton0, true);  // press
  board.Run(5'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 0), 0u);
  EXPECT_EQ(RamWord(board, p, 4), 1u);
  EXPECT_EQ(RamWord(board, p, 8), 1u);
}

TEST(CapsuleIntegration, ConsoleReadReceivesInjectedBytes) {
  SimBoard board;
  AppSpec app;
  app.name = "reader";
  app.source = R"(
_start:
    mv s0, a0
    # allow_rw(console=1, 1 = read buffer, ram+64, 4)
    li a0, 1
    li a1, 1
    addi a2, s0, 64
    li a3, 4
    li a4, 3
    ecall
    # command(console, 2 = read, 4, 0)
    li a0, 1
    li a1, 2
    li a2, 4
    li a3, 0
    li a4, 2
    ecall
    sw a0, 8(s0)
    # yield-wait-for(console, sub 2) -> a1 = bytes
    li a0, 2
    li a1, 1
    li a2, 2
    li a4, 0
    ecall
    sw a1, 0(s0)
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(100'000);  // allow + start read, park in yield
  board.uart_hw().InjectRx("ping");
  board.Run(20'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 0), 4u);
  uint8_t data[4];
  board.mcu().bus().ReadBlock(p.ram_start + 64, data, 4);
  EXPECT_EQ(std::memcmp(data, "ping", 4), 0);
}

TEST(CapsuleIntegration, ProcessInfoRestartFromUserspace) {
  // Exercises the capability-gated privileged path (§4.4): the ProcessInfo capsule
  // restarts the *calling* process using its minted token.
  SimBoard board;
  AppSpec app;
  app.name = "phoenix";
  app.source = R"(
_start:
    mv s0, a0
    lw t0, 0(s0)
    bnez t0, after_restart
    li t0, 1
    sw t0, 0(s0)
    # command(procinfo=0xA0001, 4 = restart self, 0, 0)
    li a0, 0xA0001
    li a1, 4
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # unreachable
    li a0, 0
    call tock_exit_terminate
after_restart:
    li a0, 0
    li a1, 55
    li a4, 6
    ecall
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(10'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(p.completion_code, 55u);
  EXPECT_EQ(p.restart_count, 1u);
}

TEST(CapsuleIntegration, RadioPingBetweenTwoBoards) {
  // The Signpost scenario (§2): two boards on a shared medium; node 1 transmits a
  // packet to node 2, whose app forwards it to its console.
  World world;
  BoardConfig config_tx;
  config_tx.radio_addr = 1;
  config_tx.medium = &world.medium();
  BoardConfig config_rx;
  config_rx.radio_addr = 2;
  config_rx.medium = &world.medium();
  SimBoard tx_board(config_tx);
  SimBoard rx_board(config_rx);
  world.AddBoard(&tx_board);
  world.AddBoard(&rx_board);

  AppSpec sender;
  sender.name = "sender";
  sender.source = R"(
_start:
    # allow_ro(radio=0x30001, 0 = payload, flash, 5)
    li a0, 0x30001
    li a1, 0
    la a2, msg
    li a3, 5
    li a4, 4
    ecall
    # give the receiver time to arm: sleep 20000
    li a0, 20000
    call sleep_ticks
    # command(radio, 1 = tx, dst=2, len=5)
    li a0, 0x30001
    li a1, 1
    li a2, 2
    li a3, 5
    li a4, 2
    ecall
    # yield-wait-for(radio, 0 = tx done)
    li a0, 2
    li a1, 0x30001
    li a2, 0
    li a4, 0
    ecall
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "PING!"
)";
  AppSpec receiver;
  receiver.name = "receiver";
  receiver.source = R"(
_start:
    mv s0, a0
    # allow_rw(radio, 1 = rx sink, ram+64, 16)
    li a0, 0x30001
    li a1, 1
    addi a2, s0, 64
    li a3, 16
    li a4, 3
    ecall
    # command(radio, 2 = listen)
    li a0, 0x30001
    li a1, 2
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(radio, 1 = packet) -> a1 = len
    li a0, 2
    li a1, 0x30001
    li a2, 1
    li a4, 0
    ecall
    sw a1, 0(s0)
    # print the received bytes
    addi a0, s0, 64
    li a1, 5
    call console_print
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(tx_board.installer().Install(sender), 0u) << tx_board.installer().error();
  ASSERT_NE(rx_board.installer().Install(receiver), 0u) << rx_board.installer().error();
  ASSERT_EQ(tx_board.Boot(), 1);
  ASSERT_EQ(rx_board.Boot(), 1);

  world.Run(50'000'000);
  Process& rx_proc = *rx_board.kernel().process(0);
  EXPECT_EQ(rx_proc.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(rx_board, rx_proc, 0), 5u);
  EXPECT_NE(rx_board.uart_hw().output().find("PING!"), std::string::npos)
      << "rx uart: '" << rx_board.uart_hw().output() << "'";
}

TEST(CapsuleIntegration, GrantHogCannotStarveNeighbor) {
  // E5's scenario in miniature: a process burns through its own grant-backed
  // resources (console writes with a huge claimed length each round); the neighbor
  // keeps printing happily. With a shared kernel heap the hog's allocations would
  // have been everyone's problem.
  SimBoard board;
  AppSpec hog;
  hog.name = "hog";
  hog.source = R"(
_start:
    mv s0, a0
    # grow our break until it fails, consuming our own quota
grow:
    li a0, 1
    li a1, 256
    li a4, 5
    ecall            # sbrk(+256)
    li t0, 129
    beq a0, t0, grow # variant 129 = success, keep growing
    # quota exhausted; now loop forever politely
spin:
    li a0, 1000
    call sleep_ticks
    j spin
)";
  AppSpec victim;
  victim.name = "victim";
  victim.source = R"(
_start:
    li s1, 3
loop:
    la a0, msg
    li a1, 2
    call console_print
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "v\n"
)";
  ASSERT_NE(board.installer().Install(hog), 0u);
  ASSERT_NE(board.installer().Install(victim), 0u);
  ASSERT_EQ(board.Boot(), 2);
  board.Run(50'000'000);

  Process& hog_proc = *board.kernel().process(0);
  Process& victim_proc = *board.kernel().process(1);
  // The hog consumed (nearly) its whole quota...
  EXPECT_GE(hog_proc.app_break, hog_proc.ram_start + hog_proc.ram_size - 512);
  // ...and the victim was completely unaffected.
  EXPECT_EQ(victim_proc.state, ProcessState::kTerminated);
  const std::string& out = board.uart_hw().output();
  EXPECT_EQ(std::count(out.begin(), out.end(), 'v'), 3);
}

}  // namespace
}  // namespace tock
