// Crypto substrate tests against published vectors: FIPS 197 (AES), NIST SP 800-38A
// (ECB/CTR modes), FIPS 180-4 (SHA-256), RFC 4231 (HMAC-SHA256).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/hmac_sha256.h"
#include "crypto/sha256.h"

namespace tock {
namespace {

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const uint8_t* data, size_t len) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

// ---- AES-128 ----------------------------------------------------------------------

TEST(Aes128, Fips197AppendixBVector) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto plain = FromHex("3243f6a8885a308d313198a2e0370734");
  Aes128 aes(key.data());
  std::vector<uint8_t> block = plain;
  aes.EncryptBlock(block.data());
  EXPECT_EQ(ToHex(block.data(), 16), "3925841d02dc09fbdc118597196a0b32");
  aes.DecryptBlock(block.data());
  EXPECT_EQ(block, plain);
}

TEST(Aes128, Sp80038aEcbVectors) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key.data());
  struct Case {
    const char* plain;
    const char* cipher;
  };
  const Case kCases[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
  };
  for (const Case& c : kCases) {
    auto block = FromHex(c.plain);
    aes.EncryptBlock(block.data());
    EXPECT_EQ(ToHex(block.data(), 16), c.cipher);
  }
}

TEST(Aes128, Sp80038aCtrVector) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto counter = FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  auto plain = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Aes128 aes(key.data());
  std::vector<uint8_t> data = plain;
  aes.CtrCrypt(counter.data(), data.data(), data.size());
  EXPECT_EQ(ToHex(data.data(), data.size()),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(Aes128, CtrIsItsOwnInverse) {
  auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> original = data;

  Aes128 aes(key.data());
  uint8_t ctr1[16] = {0};
  aes.CtrCrypt(ctr1, data.data(), data.size());
  EXPECT_NE(data, original);
  uint8_t ctr2[16] = {0};
  aes.CtrCrypt(ctr2, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(Aes128, CtrCounterAdvancesAcrossBlocks) {
  // Encrypting 32 bytes as one call must equal two 16-byte calls with a shared
  // counter (i.e. the counter increments per block, big-endian).
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key.data());
  std::vector<uint8_t> a(32, 0x5A);
  std::vector<uint8_t> b = a;

  uint8_t ctr_whole[16] = {0};
  aes.CtrCrypt(ctr_whole, a.data(), 32);

  uint8_t ctr_split[16] = {0};
  aes.CtrCrypt(ctr_split, b.data(), 16);
  aes.CtrCrypt(ctr_split, b.data() + 16, 16);
  EXPECT_EQ(a, b);
}

// ---- SHA-256 -----------------------------------------------------------------------

TEST(Sha256, NistShortVectors) {
  auto d1 = Sha256::Digest(reinterpret_cast<const uint8_t*>("abc"), 3);
  EXPECT_EQ(ToHex(d1.data(), d1.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");

  auto d2 = Sha256::Digest(nullptr, 0);
  EXPECT_EQ(ToHex(d2.data(), d2.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");

  const char* two_block = "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  auto d3 = Sha256::Digest(reinterpret_cast<const uint8_t*>(two_block), strlen(two_block));
  EXPECT_EQ(ToHex(d3.data(), d3.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk.data(), chunk.size());
  }
  uint8_t digest[32];
  hasher.Finalize(digest);
  EXPECT_EQ(ToHex(digest, 32),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  std::vector<uint8_t> data(200);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  auto oneshot = Sha256::Digest(data.data(), data.size());

  Sha256 streaming;
  // Odd split sizes exercise the internal buffering.
  streaming.Update(data.data(), 1);
  streaming.Update(data.data() + 1, 63);
  streaming.Update(data.data() + 64, 65);
  streaming.Update(data.data() + 129, 71);
  uint8_t digest[32];
  streaming.Finalize(digest);
  EXPECT_EQ(std::memcmp(digest, oneshot.data(), 32), 0);
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.Update(reinterpret_cast<const uint8_t*>("garbage"), 7);
  uint8_t scratch[32];
  hasher.Finalize(scratch);
  hasher.Reset();
  hasher.Update(reinterpret_cast<const uint8_t*>("abc"), 3);
  uint8_t digest[32];
  hasher.Finalize(digest);
  EXPECT_EQ(ToHex(digest, 32),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ---- HMAC-SHA256 (RFC 4231) -----------------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  std::vector<uint8_t> key(20, 0x0b);
  const char* data = "Hi There";
  auto tag = HmacSha256::Compute(key.data(), key.size(),
                                 reinterpret_cast<const uint8_t*>(data), strlen(data));
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const char* key = "Jefe";
  const char* data = "what do ya want for nothing?";
  auto tag = HmacSha256::Compute(reinterpret_cast<const uint8_t*>(key), strlen(key),
                                 reinterpret_cast<const uint8_t*>(data), strlen(data));
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  std::vector<uint8_t> key(20, 0xaa);
  std::vector<uint8_t> data(50, 0xdd);
  auto tag = HmacSha256::Compute(key.data(), key.size(), data.data(), data.size());
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  std::vector<uint8_t> key(131, 0xaa);  // longer than the block size: key is hashed
  const char* data = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto tag = HmacSha256::Compute(key.data(), key.size(),
                                 reinterpret_cast<const uint8_t*>(data), strlen(data));
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, StreamingMatchesOneShot) {
  std::vector<uint8_t> key(32, 0x42);
  std::vector<uint8_t> data(150, 0x17);
  auto oneshot = HmacSha256::Compute(key.data(), key.size(), data.data(), data.size());

  HmacSha256 mac(key.data(), key.size());
  mac.Update(data.data(), 50);
  mac.Update(data.data() + 50, 100);
  uint8_t tag[32];
  mac.Finalize(tag);
  EXPECT_EQ(std::memcmp(tag, oneshot.data(), 32), 0);
}

TEST(HmacSha256, VerifyTagDetectsEveryBitFlip) {
  std::vector<uint8_t> key(32, 1);
  std::vector<uint8_t> data(10, 2);
  auto tag = HmacSha256::Compute(key.data(), key.size(), data.data(), data.size());
  auto bad = tag;
  EXPECT_TRUE(HmacSha256::VerifyTag(tag.data(), bad.data(), tag.size()));
  for (size_t i = 0; i < bad.size(); ++i) {
    bad[i] ^= 0x80;
    EXPECT_FALSE(HmacSha256::VerifyTag(tag.data(), bad.data(), tag.size()));
    bad[i] ^= 0x80;
  }
}

}  // namespace
}  // namespace tock
