// The pluggable scheduler layer (kernel/scheduler.h, kernel/sched/).
//
// The load-bearing test is the parameterized schedulability regression: NO policy,
// under any reachable mix of process states, may ever pick a process that is
// faulted, parked restart-pending, terminated, or yielded with nothing to deliver.
// The seed kernel encoded that invariant implicitly in one private method; now that
// four policies each re-implement selection, the invariant is held explicitly over
// all of them, against randomized state soup. The rest are per-policy behavior
// units: rotation, strict priority + rotation among equals, MLFQ quantum growth /
// demotion / periodic boost, and the capability-gated SetPriority surface.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "board/sim_board.h"
#include "kernel/sched/cooperative.h"
#include "kernel/sched/mlfq.h"
#include "kernel/sched/priority.h"
#include "kernel/sched/round_robin.h"
#include "kernel/scheduler.h"

namespace tock {
namespace {

constexpr size_t kSlots = Kernel::kMaxProcesses;

// Deterministic PRNG for state soup (splitmix64, same construction the fault
// injector uses).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerPolicy policy,
                                         std::span<Process> procs,
                                         const KernelConfig& config) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(procs, config);
    case SchedulerPolicy::kCooperative:
      return std::make_unique<CooperativeScheduler>(procs, config);
    case SchedulerPolicy::kPriority:
      return std::make_unique<PriorityScheduler>(procs, config);
    case SchedulerPolicy::kMlfq:
      return std::make_unique<MlfqScheduler>(procs, config);
  }
  return nullptr;
}

// Puts slot `i` into a state drawn from the full ProcessState range, including a
// yielded process with and without a deliverable upcall. Roughly half the slots
// are "created" (valid id); the rest simulate never-used table entries.
void RandomizeSlot(Process& p, size_t i, Rng& rng) {
  p.upcall_queue.Clear();
  if (rng.Next() % 4 == 0) {
    p.id = ProcessId{};  // never-created slot
    p.state = ProcessState::kTerminated;
    return;
  }
  p.id = ProcessId{static_cast<uint8_t>(i), static_cast<uint32_t>(rng.Next() % 5 + 1)};
  switch (rng.Next() % 8) {
    case 0:
      p.state = ProcessState::kUnstarted;
      break;
    case 1:
      p.state = ProcessState::kRunnable;
      break;
    case 2:
      p.state = ProcessState::kYielded;
      p.upcall_queue.Push(QueuedUpcall{1, 0, {0, 0, 0}});
      break;
    case 3:
      p.state = ProcessState::kYielded;  // empty queue: NOT schedulable
      break;
    case 4:
      p.state = ProcessState::kYieldedFor;
      break;
    case 5:
      p.state = ProcessState::kFaulted;
      break;
    case 6:
      p.state = ProcessState::kRestartPending;
      break;
    default:
      p.state = ProcessState::kTerminated;
      break;
  }
  p.priority = static_cast<uint8_t>(rng.Next() % 8);
  p.queue_level = static_cast<uint32_t>(rng.Next() % SchedulerConfig::kMlfqLevels);
  p.sched_stamp = rng.Next() % 1000;
}

class EveryPolicy : public ::testing::TestWithParam<SchedulerPolicy> {};

// Satellite 1: the never-schedule-unrunnable regression, over randomized state
// soup, for every policy. Also checks the two boundary conditions: an empty table
// yields a null decision, and a lone schedulable process is always found.
TEST_P(EveryPolicy, NeverSelectsAProcessWithoutDeliverableWork) {
  KernelConfig config;
  config.scheduler.policy = GetParam();
  std::array<Process, kSlots> procs;
  auto sched = MakeScheduler(GetParam(), procs, config);
  ASSERT_NE(sched, nullptr);

  // All-terminated table: nothing to pick.
  EXPECT_EQ(sched->Next(0).process, nullptr);

  Rng rng(0xDECAFBADull + static_cast<uint64_t>(GetParam()));
  uint64_t now = 0;
  for (int round = 0; round < 2000; ++round) {
    for (size_t i = 0; i < kSlots; ++i) {
      RandomizeSlot(procs[i], i, rng);
    }
    now += rng.Next() % 50'000;
    bool any_schedulable = false;
    for (const Process& p : procs) {
      any_schedulable = any_schedulable || IsSchedulable(p);
    }

    SchedulingDecision d = sched->Next(now);
    if (d.process == nullptr) {
      EXPECT_FALSE(any_schedulable) << "round " << round << ": work was available";
      continue;
    }
    ASSERT_TRUE(any_schedulable);
    EXPECT_TRUE(d.process->id.IsValid());
    EXPECT_TRUE(HasDeliverableWork(*d.process))
        << "round " << round << ": picked a process in state "
        << ProcessStateName(d.process->state);
    EXPECT_NE(d.process->state, ProcessState::kFaulted);
    EXPECT_NE(d.process->state, ProcessState::kRestartPending);
    EXPECT_NE(d.process->state, ProcessState::kTerminated);

    // Feed back a plausible reason so stateful policies exercise their updates.
    StoppedReason reason = static_cast<StoppedReason>(rng.Next() % 5);
    sched->ExecutionComplete(*d.process, reason, now);
  }

  // Lone-runnable boundary: whatever internal state the soup left behind, a single
  // schedulable process must be found.
  for (size_t i = 0; i < kSlots; ++i) {
    procs[i].upcall_queue.Clear();
    procs[i].id = ProcessId{static_cast<uint8_t>(i), 1};
    procs[i].state = ProcessState::kFaulted;
  }
  procs[3].state = ProcessState::kRunnable;
  SchedulingDecision d = sched->Next(now + 1);
  ASSERT_NE(d.process, nullptr);
  EXPECT_EQ(d.process->id.index, 3);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EveryPolicy,
                         ::testing::Values(SchedulerPolicy::kRoundRobin,
                                           SchedulerPolicy::kCooperative,
                                           SchedulerPolicy::kPriority,
                                           SchedulerPolicy::kMlfq),
                         [](const ::testing::TestParamInfo<SchedulerPolicy>& info) {
                           // gtest names reject '-': "round-robin" -> "round_robin".
                           std::string name = SchedulerPolicyName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

std::array<Process, kSlots> MakeRunnableTable(size_t live) {
  std::array<Process, kSlots> procs;
  for (size_t i = 0; i < live; ++i) {
    procs[i].id = ProcessId{static_cast<uint8_t>(i), 1};
    procs[i].state = ProcessState::kRunnable;
  }
  return procs;
}

TEST(RoundRobinScheduler, RotatesThroughRunnableProcessesWithTheFixedQuantum) {
  KernelConfig config;
  auto procs = MakeRunnableTable(3);
  RoundRobinScheduler sched(procs, config);
  for (int lap = 0; lap < 3; ++lap) {
    for (uint8_t expect = 0; expect < 3; ++expect) {
      SchedulingDecision d = sched.Next(0);
      ASSERT_NE(d.process, nullptr);
      EXPECT_EQ(d.process->id.index, expect);
      ASSERT_TRUE(d.timeslice_cycles.has_value());
      EXPECT_EQ(*d.timeslice_cycles, config.timeslice_cycles);
    }
  }
}

TEST(CooperativeScheduler, RotatesLikeRoundRobinButNeverArmsATimeslice) {
  KernelConfig config;
  config.scheduler.policy = SchedulerPolicy::kCooperative;
  auto procs = MakeRunnableTable(3);
  CooperativeScheduler sched(procs, config);
  for (uint8_t expect : {0, 1, 2, 0, 1, 2}) {
    SchedulingDecision d = sched.Next(0);
    ASSERT_NE(d.process, nullptr);
    EXPECT_EQ(d.process->id.index, expect);
    EXPECT_FALSE(d.timeslice_cycles.has_value()) << "cooperative must not preempt";
  }
}

TEST(PriorityScheduler, StrictPriorityWithRoundRobinAmongEquals) {
  KernelConfig config;
  config.scheduler.policy = SchedulerPolicy::kPriority;
  auto procs = MakeRunnableTable(4);
  procs[0].priority = 5;
  procs[1].priority = 2;
  procs[2].priority = 2;
  procs[3].priority = 7;
  PriorityScheduler sched(procs, config);

  // The two priority-2 processes alternate; 5 and 7 never run while they exist.
  for (uint8_t expect : {1, 2, 1, 2, 1, 2}) {
    SchedulingDecision d = sched.Next(0);
    ASSERT_NE(d.process, nullptr);
    EXPECT_EQ(d.process->id.index, expect);
  }
  // Blocking both high-priority processes lets the next band through, in order.
  procs[1].state = ProcessState::kYieldedFor;
  procs[2].state = ProcessState::kYieldedFor;
  EXPECT_EQ(sched.Next(0).process->id.index, 0);  // priority 5 beats 7
  EXPECT_EQ(sched.Next(0).process->id.index, 0);  // ...and keeps running alone
  procs[0].state = ProcessState::kTerminated;
  EXPECT_EQ(sched.Next(0).process->id.index, 3);
  // A revived higher-priority process preempts the band immediately.
  procs[2].state = ProcessState::kRunnable;
  EXPECT_EQ(sched.Next(0).process->id.index, 2);
}

TEST(MlfqScheduler, QuantumGrowsWithLevelAndOnlyExpirationDemotes) {
  KernelConfig config;
  config.scheduler.policy = SchedulerPolicy::kMlfq;
  auto procs = MakeRunnableTable(1);
  MlfqScheduler sched(procs, config);
  const auto& mult = config.scheduler.mlfq_quantum_multiplier;

  SchedulingDecision d = sched.Next(0);
  ASSERT_NE(d.process, nullptr);
  EXPECT_EQ(*d.timeslice_cycles, config.timeslice_cycles * mult[0]);

  // Blocking keeps the level; burning the quantum demotes one level at a time and
  // saturates at the bottom.
  sched.ExecutionComplete(procs[0], StoppedReason::kBlocked, 100);
  EXPECT_EQ(procs[0].queue_level, 0u);
  sched.ExecutionComplete(procs[0], StoppedReason::kTimesliceExpired, 200);
  EXPECT_EQ(procs[0].queue_level, 1u);
  EXPECT_EQ(*sched.Next(300).timeslice_cycles, config.timeslice_cycles * mult[1]);
  sched.ExecutionComplete(procs[0], StoppedReason::kTimesliceExpired, 400);
  EXPECT_EQ(procs[0].queue_level, 2u);
  sched.ExecutionComplete(procs[0], StoppedReason::kTimesliceExpired, 500);
  EXPECT_EQ(procs[0].queue_level, 2u) << "bottom level must saturate";
  EXPECT_EQ(*sched.Next(600).timeslice_cycles, config.timeslice_cycles * mult[2]);
}

TEST(MlfqScheduler, HigherLevelIsPreferredAndPeriodicBoostResetsDemotion) {
  KernelConfig config;
  config.scheduler.policy = SchedulerPolicy::kMlfq;
  config.scheduler.mlfq_boost_period_cycles = 10'000;
  auto procs = MakeRunnableTable(2);
  MlfqScheduler sched(procs, config);

  // Demote process 0 to the bottom; process 1 (level 0) then owns the CPU.
  ASSERT_EQ(sched.Next(0).process->id.index, 0);
  sched.ExecutionComplete(procs[0], StoppedReason::kTimesliceExpired, 10);
  sched.ExecutionComplete(procs[0], StoppedReason::kTimesliceExpired, 20);
  ASSERT_EQ(procs[0].queue_level, 2u);
  EXPECT_EQ(sched.Next(30).process->id.index, 1);
  EXPECT_EQ(sched.Next(40).process->id.index, 1);
  EXPECT_EQ(sched.boosts(), 0u);

  // Crossing the boost period resets every level: process 0 competes again.
  SchedulingDecision d = sched.Next(20'000);
  EXPECT_EQ(sched.boosts(), 1u);
  EXPECT_EQ(procs[0].queue_level, 0u);
  EXPECT_EQ(procs[1].queue_level, 0u);
  ASSERT_NE(d.process, nullptr);
  EXPECT_EQ(*d.timeslice_cycles,
            config.timeslice_cycles * config.scheduler.mlfq_quantum_multiplier[0]);
}

// The capability-gated management surface, mirroring SetFaultPolicy: generation
// checked, works on any created slot, and survives restarts (priority is
// configuration, not incarnation state) while the MLFQ level does not.
TEST(SetPriority, IsGenerationCheckedAndPersistsAcrossRestart) {
  SimBoard board;
  AppSpec app;
  app.name = "app";
  app.source = R"(
_start:
    li a0, 0
    li a4, 0
    ecall
    j _start
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  Process* p = board.kernel().process(0);
  EXPECT_EQ(p->priority, board.kernel().config().scheduler.default_priority);

  ASSERT_TRUE(board.kernel().SetPriority(p->id, 1, board.pm_cap()).ok());
  EXPECT_EQ(p->priority, 1);

  // A stale generation must be rejected.
  ProcessId stale = p->id;
  stale.generation += 1;
  EXPECT_FALSE(board.kernel().SetPriority(stale, 6, board.pm_cap()).ok());
  EXPECT_EQ(p->priority, 1);

  // Restart: priority sticks, scheduler incarnation state clears.
  p->queue_level = 2;
  p->sched_stamp = 77;
  ASSERT_TRUE(board.kernel().RestartProcess(p->id, board.pm_cap()).ok());
  EXPECT_EQ(p->priority, 1);
  EXPECT_EQ(p->queue_level, 0u);
  EXPECT_EQ(p->sched_stamp, 0u);
}

}  // namespace
}  // namespace tock
