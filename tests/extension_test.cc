// Tests for the extension features: nonvolatile storage, the process console
// (kernel shell), cooperative scheduling, and kernel edge cases around resource
// table exhaustion and upcall queueing.
#include <gtest/gtest.h>

#include <cstring>

#include "board/sim_board.h"

namespace tock {
namespace {

uint32_t RamWord(SimBoard& board, Process& p, uint32_t off) {
  return *board.mcu().bus().Read(p.ram_start + off, 4, Privilege::kPrivileged);
}

// ---- Nonvolatile storage -------------------------------------------------------------

TEST(NvStorage, WriteThenReadRoundTripsThroughFlash) {
  SimBoard board;
  AppSpec app;
  app.name = "store";
  app.source = R"(
_start:
    mv s0, a0
    # allow_ro(nv=0x50001, 1 = write source, flash data, 12)
    li a0, 0x50001
    li a1, 1
    la a2, payload
    li a3, 12
    li a4, 4
    ecall
    # command(nv, 2 = write, offset=128, len=12); wait for sub 1
    li a0, 0x50001
    li a1, 2
    li a2, 128
    li a3, 12
    li a4, 2
    ecall
    sw a0, 16(s0)
    li a0, 2
    li a1, 0x50001
    li a2, 1
    li a4, 0
    ecall
    sw a1, 20(s0)        # bytes written
    # allow_rw(nv, 0 = read dest, ram+64, 12)
    li a0, 0x50001
    li a1, 0
    addi a2, s0, 64
    li a3, 12
    li a4, 3
    ecall
    # command(nv, 1 = read, offset=128, len=12); wait for sub 0
    li a0, 0x50001
    li a1, 1
    li a2, 128
    li a3, 12
    li a4, 2
    ecall
    li a0, 2
    li a1, 0x50001
    li a2, 0
    li a4, 0
    ecall
    sw a1, 24(s0)        # bytes read
    li a0, 0
    call tock_exit_terminate
payload:
    .asciz "persist-me!"
)";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(50'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 20), 12u);
  EXPECT_EQ(RamWord(board, p, 24), 12u);
  uint8_t data[12];
  board.mcu().bus().ReadBlock(p.ram_start + 64, data, 12);
  EXPECT_EQ(std::memcmp(data, "persist-me!", 12), 0);
  // The bytes actually live in flash, at the capsule's region + offset.
  uint8_t flash_bytes[12];
  board.mcu().bus().ReadBlock(SimBoard::kNvStorageBase + 128, flash_bytes, 12);
  EXPECT_EQ(std::memcmp(flash_bytes, "persist-me!", 12), 0);
}

TEST(NvStorage, RejectsOutOfRegionAccess) {
  SimBoard board;
  AppSpec app;
  app.name = "oob";
  app.source = R"(
_start:
    mv s0, a0
    li a0, 0x50001
    li a1, 1
    la a2, payload
    li a3, 8
    li a4, 4
    ecall
    # write at offset = region size (out of range)
    li a0, 0x50001
    li a1, 2
    li t0, 0x10000
    mv a2, t0
    li a3, 8
    li a4, 2
    ecall
    sw a0, 0(s0)     # expect failure variant 0
    sw a1, 4(s0)     # INVAL
    # size query
    li a0, 0x50001
    li a1, 3
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    sw a1, 8(s0)
    li a0, 0
    call tock_exit_terminate
payload:
    .asciz "nope..."
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(5'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(RamWord(board, p, 0), 0u);
  EXPECT_EQ(RamWord(board, p, 4), static_cast<uint32_t>(ErrorCode::kInvalid));
  EXPECT_EQ(RamWord(board, p, 8), SimBoard::kNvStorageSize);
}

TEST(NvStorage, DataSurvivesProcessRestart) {
  // The whole point of NV storage: state outlives the process (unlike grants, §2.4).
  SimBoard board;
  AppSpec app;
  app.name = "reborn";
  app.source = R"(
_start:
    mv s0, a0
    # read flag byte from nv offset 0 into ram+64
    li a0, 0x50001
    li a1, 0
    addi a2, s0, 64
    li a3, 4
    li a4, 3
    ecall
    li a0, 0x50001
    li a1, 1
    li a2, 0
    li a3, 4
    li a4, 2
    ecall
    li a0, 2
    li a1, 0x50001
    li a2, 0
    li a4, 0
    ecall
    lbu t0, 64(s0)
    li t1, 0x5A
    beq t0, t1, second_life
    # first life: write the marker then exit-restart
    li t1, 0x5A
    sb t1, 68(s0)
    li a0, 0x50001
    li a1, 1
    addi a2, s0, 68
    li a3, 4
    li a4, 4
    ecall
    li a0, 0x50001
    li a1, 2
    li a2, 0
    li a3, 4
    li a4, 2
    ecall
    li a0, 2
    li a1, 0x50001
    li a2, 1
    li a4, 0
    ecall
    li a0, 1
    li a4, 6
    ecall               # exit-restart
second_life:
    li a0, 0
    li a1, 90
    li a4, 6
    ecall               # terminate(90): we saw our own pre-restart marker
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(100'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(p.completion_code, 90u);
  EXPECT_EQ(p.restart_count, 1u);
}

// ---- Process console --------------------------------------------------------------------

TEST(ProcessConsoleShell, ListShowsProcessTable) {
  SimBoard board;
  AppSpec app;
  app.name = "worker";
  app.source = "_start:\nspin:\n    li a0, 10000\n    call sleep_ticks\n    j spin\n";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(100'000);

  board.uart1_hw().InjectRx("list\n");
  board.Run(30'000'000);
  const std::string& out = board.uart1_hw().output();
  EXPECT_NE(out.find("worker"), std::string::npos) << out;
  EXPECT_NE(out.find("Yielded"), std::string::npos) << out;
}

TEST(ProcessConsoleShell, StopAndStartManageProcesses) {
  SimBoard board;
  AppSpec app;
  app.name = "victim";
  app.source = "_start:\nspin:\n    li a0, 10000\n    call sleep_ticks\n    j spin\n";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(100'000);

  board.uart1_hw().InjectRx("stop 0\n");
  board.Run(30'000'000);
  EXPECT_EQ(board.kernel().process(0)->state, ProcessState::kTerminated);
  EXPECT_NE(board.uart1_hw().output().find("stop 0: ok"), std::string::npos);

  board.uart1_hw().InjectRx("start 0\n");
  board.Run(30'000'000);
  EXPECT_TRUE(board.kernel().process(0)->IsAlive());
  EXPECT_EQ(board.kernel().process(0)->restart_count, 1u);
}

TEST(ProcessConsoleShell, UnknownCommandIsReported) {
  SimBoard board;
  board.uart1_hw().InjectRx("frobnicate\n");
  board.Run(30'000'000);
  EXPECT_NE(board.uart1_hw().output().find("unknown command"), std::string::npos);
}

TEST(ProcessConsoleShell, LoadsShowsLoaderLedgerWithTypedErrors) {
  BoardConfig config;
  config.kernel.loader = LoaderMode::kAsynchronous;
  SimBoard board(config);
  AppSpec good;
  good.name = "good";
  good.source = "_start:\nspin:\n    li a0, 10000\n    call sleep_ticks\n    j spin\n";
  good.sign = true;
  AppSpec evil = good;
  evil.name = "evil";
  evil.corrupt_signature = true;
  ASSERT_NE(board.installer().Install(good), 0u);
  ASSERT_NE(board.installer().Install(evil), 0u);
  ASSERT_EQ(board.Boot(), 1);

  board.uart1_hw().InjectRx("loads\n");
  board.Run(30'000'000);
  const std::string& out = board.uart1_hw().output();
  EXPECT_NE(out.find("created 1 rejected 1"), std::string::npos) << out;
  EXPECT_NE(out.find("good"), std::string::npos) << out;
  EXPECT_NE(out.find("created verified"), std::string::npos) << out;
  // The rejected image shows its typed §3.4 stage, straight from LoadErrorName.
  EXPECT_NE(out.find("authenticity"), std::string::npos) << out;
}

// ---- Cooperative scheduling (timeslice = 0 disables preemption) ---------------------------

TEST(Scheduling, CooperativeModeLetsAHogStarveNeighbors) {
  // The ablation twin of KernelTest.InfiniteLoopCannotStarveNeighbor: with the
  // SysTick quantum disabled, Tock degenerates to the cooperative model of classic
  // embedded frameworks — and a spinning app starves everyone (§2's motivation for
  // hardware-preemptible processes).
  BoardConfig config;
  config.kernel.timeslice_cycles = 0;
  SimBoard board(config);
  AppSpec hog;
  hog.name = "hog";
  hog.source = "_start:\nspin:\n    j spin\n";
  AppSpec worker;
  worker.name = "worker";
  worker.source = R"(
_start:
    la a0, msg
    li a1, 5
    call console_print
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "work\n"
)";
  ASSERT_NE(board.installer().Install(hog), 0u);
  ASSERT_NE(board.installer().Install(worker), 0u);
  ASSERT_EQ(board.Boot(), 2);
  board.Run(10'000'000);
  EXPECT_EQ(board.uart_hw().output().find("work"), std::string::npos)
      << "worker ran despite cooperative hog";
  EXPECT_EQ(board.kernel().process(0)->timeslice_expirations, 0u);
}

// ---- Kernel resource-table edge cases -----------------------------------------------------

TEST(KernelLimits, AllowSlotTableExhaustionFailsGracefully) {
  SimBoard board;
  // 17 distinct allow numbers against a 16-slot table: the 17th must fail NOMEM and
  // nothing else may break.
  std::string source = "_start:\n    mv s0, a0\n";
  for (int i = 0; i < 17; ++i) {
    source += "    li a0, 1\n    li a1, " + std::to_string(20 + i) + "\n";
    source += "    addi a2, s0, 256\n    li a3, 4\n    li a4, 3\n    ecall\n";
  }
  source += "    sw a0, 0(s0)\n    sw a1, 4(s0)\n";
  source += "    li a0, 0\n    call tock_exit_terminate\n";
  AppSpec app;
  app.name = "slots";
  app.source = source;
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(5'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 0), 2u);  // Failure2U32
  EXPECT_EQ(RamWord(board, p, 4), static_cast<uint32_t>(ErrorCode::kNoMem));
}

TEST(KernelLimits, UpcallQueueOverflowDropsOldestNullEntriesFirst) {
  // Fill the queue with alarm upcalls the process never drains; the kernel must
  // not crash and the process must still be able to exit cleanly.
  SimBoard board;
  AppSpec app;
  app.name = "flood";
  app.source = R"(
_start:
    mv s0, a0
    # subscribe a handler so upcalls queue
    li a0, 0
    li a1, 0
    la a2, handler
    li a3, 0
    li a4, 1
    ecall
    li s1, 24
arm_loop:
    # set relative alarm 100, never yield: each firing queues an upcall
    li a0, 0
    li a1, 5
    li a2, 100
    li a3, 0
    li a4, 2
    ecall
    # burn ~400 cycles so the alarm fires while we run
    li t0, 130
burn:
    addi t0, t0, -1
    bnez t0, burn
    addi s1, s1, -1
    bnez s1, arm_loop
    li a0, 0
    call tock_exit_terminate
handler:
    jr ra
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(20'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(p.state, ProcessState::kTerminated);
  // Some upcalls queued beyond capacity were dropped, and that was survivable.
  EXPECT_GT(board.kernel().dropped_upcalls() + p.upcall_queue.Size(), 0u);
}

TEST(KernelLimits, NestedUpcallsWithinDepthLimitWork) {
  // An upcall handler that itself yields and receives another upcall (depth 2).
  SimBoard board;
  AppSpec app;
  app.name = "nest";
  app.source = R"(
_start:
    mv s0, a0
    li a0, 0
    li a1, 0
    la a2, outer
    li a3, 0
    li a4, 1
    ecall
    # arm + wait
    li a0, 0
    li a1, 5
    li a2, 500
    li a3, 0
    li a4, 2
    ecall
    li a0, 1
    li a4, 0
    ecall
    li a0, 0
    call tock_exit_terminate
outer:
    addi sp, sp, -4
    sw ra, 0(sp)
    lw t0, 0(s0)
    addi t0, t0, 1
    sw t0, 0(s0)
    li t1, 2
    bge t0, t1, outer_done      # only nest once
    # re-arm and yield *inside the handler*
    li a0, 0
    li a1, 5
    li a2, 500
    li a3, 0
    li a4, 2
    ecall
    li a0, 1
    li a4, 0
    ecall
outer_done:
    lw ra, 0(sp)
    addi sp, sp, 4
    jr ra
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(20'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 0), 2u);  // handler ran twice (nested once)
  EXPECT_EQ(p.upcalls_delivered, 2u);
}

TEST(KernelLimits, RestartClearsAllowAndSubscribeState) {
  SimBoard board;
  AppSpec app;
  app.name = "cleaner";
  app.source = R"(
_start:
    mv s0, a0
    lw t0, 0(s0)
    bnez t0, second
    li t0, 1
    sw t0, 0(s0)
    # set up an allow and a subscription, then restart
    li a0, 1
    li a1, 1
    addi a2, s0, 256
    li a3, 16
    li a4, 3
    ecall
    li a0, 0
    li a1, 0
    la a2, second
    li a3, 0
    li a4, 1
    ecall
    li a0, 1
    li a4, 6
    ecall
second:
    # after restart, the first allow swap must return the null buffer (0, 0)
    li a0, 1
    li a1, 1
    addi a2, s0, 512
    li a3, 16
    li a4, 3
    ecall
    sw a1, 4(s0)
    sw a2, 8(s0)
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(10'000'000);
  Process& p = *board.kernel().process(0);
  ASSERT_EQ(p.state, ProcessState::kTerminated);
  EXPECT_EQ(RamWord(board, p, 4), 0u);
  EXPECT_EQ(RamWord(board, p, 8), 0u);
}

TEST(KernelLimits, ProcessSlotExhaustion) {
  // Board supports kMaxProcesses; the loader must reject the ninth app gracefully.
  SimBoard board;
  for (int i = 0; i < 9; ++i) {
    AppSpec app;
    app.name = "p" + std::to_string(i);
    app.source = "_start:\nspin:\n    j spin\n";
    app.include_runtime = false;
    ASSERT_NE(board.installer().Install(app), 0u) << i;
  }
  EXPECT_EQ(board.loader().LoadAllSync(), static_cast<int>(Kernel::kMaxProcesses));
  EXPECT_EQ(board.loader().rejected_count(), 1);
}

TEST(KernelLimits, StackOverflowFaultsCleanly) {
  // Recursing past the MPU window is an ordinary, contained process fault.
  SimBoard board;
  AppSpec app;
  app.name = "recurse";
  app.source = R"(
_start:
recurse:
    addi sp, sp, -2048
    sw ra, 0(sp)
    j recurse
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(5'000'000);
  Process& p = *board.kernel().process(0);
  EXPECT_EQ(p.state, ProcessState::kFaulted);
  EXPECT_EQ(p.fault_info.vm_fault.bus_fault.kind, BusFaultKind::kMpuViolation);
}

}  // namespace
}  // namespace tock
