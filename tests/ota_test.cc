// OTA distribution tests (DESIGN.md §12): a gateway board pushes a signed TBF
// image to subscriber boards over the lossy packet fabric. The acceptance
// criteria pinned here:
//   * every subscriber converges on the signed update — on a clean link and
//     under seeded drop/duplication/corruption;
//   * tampered images are rejected at the right §3.4 stage (typed LoadError),
//     re-requested up to the retry budget, and never wedge a board;
//   * fault injection and the whole campaign are bit-identical for any host
//     thread count (delivery logs, fault counters, protocol stats).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "board/fleet.h"
#include "board/sim_board.h"

namespace tock {
namespace {

// Baseline workload on every subscriber: the app that must keep running while
// the update streams in and verifies.
const char* kSleeperApp = R"(
_start:
loop:
    li a0, 50000
    call sleep_ticks
    j loop
)";

// A 1-gateway + N-subscriber deployment against an optionally lossy medium.
struct OtaFleet {
  OtaFleet(unsigned threads, size_t subscribers, const LinkFaultConfig& faults,
           const AppSpec& update) {
    FleetConfig config;
    config.threads = threads;
    config.link_faults = faults;
    fleet = std::make_unique<Fleet>(config);
    static constexpr SchedulerPolicy kRotation[] = {
        SchedulerPolicy::kRoundRobin, SchedulerPolicy::kPriority, SchedulerPolicy::kMlfq};
    for (size_t i = 0; i < subscribers + 1; ++i) {
      BoardConfig bc;
      bc.rng_seed = 0x07A + static_cast<uint32_t>(i);
      bc.radio_addr = static_cast<uint16_t>(i + 1);
      bc.medium = &fleet->medium();
      bc.kernel.scheduler.policy = kRotation[i % 3];
      bc.allow_scheduler_env = false;
      bc.ota.role = i == 0 ? OtaRole::kGateway : OtaRole::kSubscriber;
      auto board = std::make_unique<SimBoard>(bc);
      board->radio_hw().EnableDeliveryLog();
      int expected = 0;
      if (i != 0) {
        AppSpec sleeper;
        sleeper.name = "sleeper";
        sleeper.source = kSleeperApp;
        EXPECT_NE(board->installer().Install(sleeper), 0u) << board->installer().error();
        expected = 1;
      }
      EXPECT_EQ(board->Boot(), expected);
      fleet->AddBoard(board.get());
      boards.push_back(std::move(board));
    }
    fleet->AlignClocks();

    // All subscribers carry identical baseline apps and so resolve the same
    // staging address; the gateway builds the position-dependent image for it.
    staging = boards[1]->ota_staging_addr();
    std::string error;
    std::vector<uint8_t> image = BuildAppImage(update, staging, SimBoard::kDeviceKey, &error);
    EXPECT_FALSE(image.empty()) << error;
    std::vector<uint16_t> addrs;
    for (size_t i = 1; i < boards.size(); ++i) {
      addrs.push_back(static_cast<uint16_t>(i + 1));
    }
    gateway().Configure(std::move(image), addrs);
    gateway().StartPush();
  }

  OtaGateway& gateway() { return boards[0]->ota_gateway(); }
  OtaSubscriber& subscriber(size_t i) { return boards[i + 1]->ota_subscriber(); }
  size_t subscriber_count() const { return boards.size() - 1; }

  // Steps the fleet in epochs until the gateway resolved every peer (converged
  // or failed) or the cycle budget runs out. Returns cycles actually run.
  uint64_t RunUntilDone(uint64_t budget, uint64_t step = 1'000'000) {
    uint64_t ran = 0;
    while (ran < budget && !gateway().Done()) {
      fleet->Run(step);
      ran += step;
    }
    // Let the final status exchanges settle (converged peers stop transmitting).
    fleet->Run(step);
    return ran + step;
  }

  // Everything observable about one board, as one comparable string — including
  // the injected-fault marks, so fault injection itself is proven reproducible.
  std::string Fingerprint(size_t i) {
    SimBoard& board = *boards[i];
    std::string out;
    char line[192];
    LinkFaultCounters faults = board.radio_hw().fault_counters();
    std::snprintf(line, sizeof(line),
                  "cycles=%llu insns=%llu tx=%llu rx=%llu ovr=%llu "
                  "drop=%llu dup=%llu reo=%llu cor=%llu\n",
                  static_cast<unsigned long long>(board.mcu().CyclesNow()),
                  static_cast<unsigned long long>(board.kernel().instructions_retired()),
                  static_cast<unsigned long long>(board.radio_hw().packets_sent()),
                  static_cast<unsigned long long>(board.radio_hw().packets_received()),
                  static_cast<unsigned long long>(board.radio_hw().rx_overruns()),
                  static_cast<unsigned long long>(faults.dropped),
                  static_cast<unsigned long long>(faults.duplicated),
                  static_cast<unsigned long long>(faults.reordered),
                  static_cast<unsigned long long>(faults.corrupted));
    out += line;
    for (const RadioDeliveryRecord& r : board.radio_hw().delivery_log()) {
      std::snprintf(line, sizeof(line),
                    "deliver cycle=%llu src=%u dst=%u len=%u sum=%u fault=%u ovr=%d\n",
                    static_cast<unsigned long long>(r.cycle), r.src, r.dst, r.len,
                    r.payload_sum, r.fault_bits, r.overrun ? 1 : 0);
      out += line;
    }
    return out;
  }

  std::unique_ptr<Fleet> fleet;
  std::vector<std::unique_ptr<SimBoard>> boards;
  uint32_t staging = 0;
};

AppSpec SignedUpdate() {
  AppSpec update;
  update.name = "update";
  update.source = kSleeperApp;
  update.sign = true;
  return update;
}

// ---- Convergence ----------------------------------------------------------------------------

TEST(OtaDistribution, CleanLinkConverges) {
  OtaFleet ota(1, /*subscribers=*/8, LinkFaultConfig{}, SignedUpdate());
  ota.RunUntilDone(60'000'000);

  ASSERT_TRUE(ota.gateway().Done());
  EXPECT_EQ(ota.gateway().stats().converged, 8u);
  EXPECT_EQ(ota.gateway().stats().failed, 0u);
  EXPECT_EQ(ota.gateway().stats().image_repushes, 0u);
  for (size_t i = 0; i < ota.subscriber_count(); ++i) {
    EXPECT_TRUE(ota.subscriber(i).Converged()) << "subscriber " << i;
    // The baseline app kept running and the verified update joined it.
    EXPECT_EQ(ota.boards[i + 1]->kernel().NumLiveProcesses(), 2u) << "subscriber " << i;
    const ProcessLoader::LoadRecord* rec = ota.boards[i + 1]->loader().RecordFor(ota.staging);
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->created);
    EXPECT_TRUE(rec->verified);
  }
  FleetStats stats = ota.fleet->Stats();
  EXPECT_EQ(stats.wedge_events, 0u);
  EXPECT_EQ(stats.frames_dropped + stats.frames_duplicated + stats.frames_corrupted, 0u);
}

TEST(OtaDistribution, LossyLinksConverge) {
  // 10% drop + 2% duplication + 1% payload corruption: the retry/backoff plane
  // must deliver every subscriber anyway, with zero wedged boards.
  LinkFaultConfig faults;
  faults.seed = 0xD15EA5E;
  faults.drop_permille = 100;
  faults.duplicate_permille = 20;
  faults.corrupt_permille = 10;
  OtaFleet ota(1, /*subscribers=*/8, faults, SignedUpdate());
  ota.RunUntilDone(120'000'000);

  ASSERT_TRUE(ota.gateway().Done());
  EXPECT_EQ(ota.gateway().stats().converged, 8u);
  EXPECT_EQ(ota.gateway().stats().failed, 0u);
  for (size_t i = 0; i < ota.subscriber_count(); ++i) {
    EXPECT_TRUE(ota.subscriber(i).Converged()) << "subscriber " << i;
    EXPECT_EQ(ota.boards[i + 1]->kernel().NumLiveProcesses(), 2u) << "subscriber " << i;
  }
  FleetStats stats = ota.fleet->Stats();
  EXPECT_EQ(stats.wedge_events, 0u);
  EXPECT_GT(stats.frames_dropped, 0u);
  EXPECT_GT(stats.frames_corrupted, 0u);
  // Loss was actually recovered from, not dodged.
  EXPECT_GT(ota.gateway().stats().retransmits, 0u);
}

TEST(OtaDistribution, HeavyLossStillConverges) {
  // 30% drop: deep backoff territory; convergence just takes longer.
  LinkFaultConfig faults;
  faults.seed = 0xBADC0DE;
  faults.drop_permille = 300;
  OtaFleet ota(1, /*subscribers=*/4, faults, SignedUpdate());
  ota.RunUntilDone(240'000'000);

  ASSERT_TRUE(ota.gateway().Done());
  EXPECT_EQ(ota.gateway().stats().converged, 4u);
  EXPECT_EQ(ota.gateway().stats().failed, 0u);
  EXPECT_GT(ota.gateway().stats().retransmits, 0u);
  EXPECT_EQ(ota.fleet->Stats().wedge_events, 0u);
}

// ---- Graceful degradation (§3.4 typed rejection) --------------------------------------------

TEST(OtaDistribution, TamperedImageRejectedAtAuthenticityStage) {
  // The pushed image carries a flipped signature bit: every chunk CRC passes and
  // the whole-image CRC passes (the gateway hashed the tampered bytes), so the
  // rejection must come from the loader's authenticity stage — typed, counted,
  // re-requested up to the image budget, then a clean give-up. No board wedges.
  AppSpec tampered = SignedUpdate();
  tampered.corrupt_signature = true;
  OtaFleet ota(1, /*subscribers=*/2, LinkFaultConfig{}, tampered);
  ota.RunUntilDone(120'000'000);

  ASSERT_TRUE(ota.gateway().Done());
  const OtaGatewayStats& gw = ota.gateway().stats();
  EXPECT_EQ(gw.converged, 0u);
  EXPECT_EQ(gw.failed, 2u);
  // Every push attempt was rejected at the authenticity stage and re-pushed
  // until the per-subscriber image budget ran out.
  EXPECT_EQ(gw.reject_authenticity, 2u * OtaGateway::kImageRetryLimit);
  EXPECT_EQ(gw.image_repushes, 2u * (OtaGateway::kImageRetryLimit - 1));
  EXPECT_EQ(gw.reject_integrity + gw.reject_image_crc + gw.reject_other, 0u);

  for (size_t i = 0; i < ota.subscriber_count(); ++i) {
    EXPECT_FALSE(ota.subscriber(i).Converged());
    EXPECT_EQ(ota.subscriber(i).last_status(),
              static_cast<uint8_t>(LoadError::kAuthenticity));
    // The baseline app is untouched by the failed update.
    EXPECT_EQ(ota.boards[i + 1]->kernel().NumLiveProcesses(), 1u);
    // Retried loads clear their stale failure records: one row per slot, not
    // one per attempt.
    const ProcessLoader& loader = ota.boards[i + 1]->loader();
    size_t staging_records = 0;
    for (const ProcessLoader::LoadRecord& rec : loader.records()) {
      if (rec.flash_addr == ota.staging) {
        ++staging_records;
      }
    }
    EXPECT_EQ(staging_records, 1u);
    EXPECT_EQ(loader.RecordFor(ota.staging)->error, LoadError::kAuthenticity);
  }
  // Degraded, not wedged: every board still has live processes or future events.
  FleetStats stats = ota.fleet->Stats();
  EXPECT_EQ(stats.wedge_events, 0u);
  EXPECT_EQ(stats.boards_live, 3u);
}

TEST(OtaDistribution, UnsignedImageRejectedAtIntegrityStage) {
  AppSpec unsigned_update = SignedUpdate();
  unsigned_update.sign = false;
  OtaFleet ota(1, /*subscribers=*/1, LinkFaultConfig{}, unsigned_update);
  ota.RunUntilDone(60'000'000);

  ASSERT_TRUE(ota.gateway().Done());
  EXPECT_EQ(ota.gateway().stats().converged, 0u);
  EXPECT_EQ(ota.gateway().stats().failed, 1u);
  EXPECT_EQ(ota.gateway().stats().reject_integrity, OtaGateway::kImageRetryLimit);
  EXPECT_EQ(ota.subscriber(0).last_status(), static_cast<uint8_t>(LoadError::kUnsigned));
  EXPECT_EQ(ota.fleet->Stats().wedge_events, 0u);
}

// ---- Determinism ----------------------------------------------------------------------------

// The tentpole guarantee extended to the fault layer: the same lossy OTA
// campaign stepped by 1 and by 4 host threads injects the exact same faults on
// the exact same frames and produces bit-identical boards, protocol stats, and
// delivery logs (ISSUE acceptance criterion; TSan-clean under the tsan preset).
TEST(OtaDeterminism, ThreadCountInvariant) {
  LinkFaultConfig faults;
  faults.seed = 0x5EED;
  faults.drop_permille = 100;
  faults.duplicate_permille = 20;
  faults.reorder_permille = 10;
  faults.corrupt_permille = 10;
  AppSpec update = SignedUpdate();
  OtaFleet solo(1, /*subscribers=*/4, faults, update);
  OtaFleet quad(4, /*subscribers=*/4, faults, update);
  // Fixed budget (no early exit): both runs must cover identical cycles.
  solo.fleet->Run(40'000'000);
  quad.fleet->Run(40'000'000);

  for (size_t i = 0; i < solo.boards.size(); ++i) {
    EXPECT_EQ(solo.Fingerprint(i), quad.Fingerprint(i)) << "board " << i;
  }
  EXPECT_EQ(solo.gateway().stats().frames_sent, quad.gateway().stats().frames_sent);
  EXPECT_EQ(solo.gateway().stats().retransmits, quad.gateway().stats().retransmits);
  EXPECT_EQ(solo.gateway().stats().converged, quad.gateway().stats().converged);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(solo.subscriber(i).stats().chunks_received,
              quad.subscriber(i).stats().chunks_received);
    EXPECT_EQ(solo.subscriber(i).stats().chunk_crc_failures,
              quad.subscriber(i).stats().chunk_crc_failures);
    EXPECT_EQ(solo.subscriber(i).Converged(), quad.subscriber(i).Converged());
  }
  // The campaign must have actually exercised the fault layer to prove anything.
  FleetStats stats = solo.fleet->Stats();
  EXPECT_GT(stats.frames_dropped, 0u);
  EXPECT_EQ(stats.frames_dropped, quad.fleet->Stats().frames_dropped);
  // And both runs converged everyone within the budget.
  EXPECT_EQ(solo.gateway().stats().converged, 4u);
}

}  // namespace
}  // namespace tock
