// Live telemetry transport tests (kernel/telemetry.h, util/spsc_ring.h,
// util/rate_limiter.h, util/shm_region.h).
//
// Three layers of guarantees under test:
//   1. The lossy SPSC ring: exact-gap accounting (received + lost == published,
//      always), torn-read rejection, and fail-closed geometry validation.
//   2. The deterministic storm suppressor: admission is a pure function of the
//      simulated cycle sequence, so counts reconcile exactly across runs.
//   3. Zero perturbation: a board/fleet with telemetry attached produces
//      byte-identical stats dumps, trace dumps, and radio delivery logs to one
//      without — attaching a tap must never change simulated behavior.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "board/fleet.h"
#include "board/sim_board.h"
#include "kernel/telemetry.h"
#include "kernel/trace.h"
#include "util/rate_limiter.h"
#include "util/shm_region.h"
#include "util/spsc_ring.h"

namespace tock {
namespace {

// ---- SpscRing -------------------------------------------------------------

// Raw backing store for a ring, matching SpscWriter::Init's requirements
// (64-byte aligned, zeroed).
struct RingBuf {
  alignas(64) uint64_t words[1024] = {};
};

uint64_t* SlotWord(RingBuf& buf, uint64_t capacity, uint32_t word_count,
                   uint64_t seq, size_t word) {
  uint64_t* slots = buf.words + sizeof(SpscRingHeader) / sizeof(uint64_t);
  return slots + (seq & (capacity - 1)) * SpscSlotWords(word_count) + word;
}

TEST(SpscRing, RoundTripInOrder) {
  RingBuf buf;
  SpscWriter writer;
  writer.Init(buf.words, /*capacity=*/8, /*word_count=*/2);
  SpscReader reader;
  ASSERT_TRUE(reader.Bind(buf.words, SpscRingBytes(8, 2)));
  EXPECT_EQ(reader.capacity(), 8u);
  EXPECT_EQ(reader.word_count(), 2u);

  uint64_t out[2];
  uint64_t gap = 77;
  EXPECT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kEmpty);
  EXPECT_EQ(gap, 0u);

  for (uint64_t i = 0; i < 5; ++i) {
    const uint64_t words[2] = {i, i * 100};
    writer.Push(words);
  }
  EXPECT_EQ(writer.published(), 5u);
  EXPECT_EQ(writer.evicted(), 0u);

  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kRecord) << i;
    EXPECT_EQ(gap, 0u);
    EXPECT_EQ(out[0], i);
    EXPECT_EQ(out[1], i * 100);
  }
  EXPECT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kEmpty);
  EXPECT_EQ(reader.lost(), 0u);
  EXPECT_EQ(reader.next_seq(), 5u);
}

// Wraparound: a reader that keeps up sees every record even after the writer
// has lapped the buffer many times over.
TEST(SpscRing, WraparoundKeepingUpLosesNothing) {
  RingBuf buf;
  SpscWriter writer;
  writer.Init(buf.words, /*capacity=*/4, /*word_count=*/1);
  SpscReader reader;
  ASSERT_TRUE(reader.Bind(buf.words, SpscRingBytes(4, 1)));

  uint64_t out[1];
  uint64_t gap = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    writer.Push(&i);
    ASSERT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kRecord) << i;
    EXPECT_EQ(out[0], i);
    EXPECT_EQ(gap, 0u);
  }
  EXPECT_EQ(reader.lost(), 0u);
  EXPECT_EQ(writer.evicted(), 96u);  // writer-side eviction is about *readers
                                     // that might attach later*, not this one
}

// Overflow: a reader that attaches after the writer lapped the ring gets the
// exact gap (head - capacity is the oldest survivor — precise, not a guess),
// and received + lost reconciles against published.
TEST(SpscRing, OverflowReportsExactGap) {
  RingBuf buf;
  SpscWriter writer;
  writer.Init(buf.words, /*capacity=*/4, /*word_count=*/1);
  for (uint64_t i = 0; i < 100; ++i) {
    writer.Push(&i);
  }

  SpscReader reader;
  ASSERT_TRUE(reader.Bind(buf.words, SpscRingBytes(4, 1)));
  uint64_t out[1];
  uint64_t gap = 0;
  ASSERT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kRecord);
  EXPECT_EQ(gap, 96u);  // seqs 0..95 overwritten; 96 is the oldest survivor
  EXPECT_EQ(out[0], 96u);
  uint64_t received = 1;
  while (reader.PollNext(out, &gap) == SpscReader::Poll::kRecord) {
    EXPECT_EQ(gap, 0u);
    ++received;
  }
  EXPECT_EQ(received, 4u);
  EXPECT_EQ(reader.lost(), 96u);
  EXPECT_EQ(received + reader.lost(), writer.published());
  EXPECT_EQ(reader.next_seq(), 100u);
}

// A reader mid-stream that falls behind resynchronises and keeps counting.
TEST(SpscRing, FallBehindMidStreamReconciles) {
  RingBuf buf;
  SpscWriter writer;
  writer.Init(buf.words, /*capacity=*/8, /*word_count=*/1);
  SpscReader reader;
  ASSERT_TRUE(reader.Bind(buf.words, SpscRingBytes(8, 1)));

  uint64_t out[1];
  uint64_t gap = 0;
  uint64_t received = 0;
  // Read 3, then let the writer run far ahead, then drain.
  for (uint64_t i = 0; i < 3; ++i) {
    writer.Push(&i);
  }
  while (reader.PollNext(out, &gap) == SpscReader::Poll::kRecord) ++received;
  for (uint64_t i = 3; i < 50; ++i) {
    writer.Push(&i);
  }
  while (reader.PollNext(out, &gap) == SpscReader::Poll::kRecord) ++received;
  EXPECT_EQ(received + reader.lost(), writer.published());
  EXPECT_EQ(out[0], 49u);  // last drained record is the newest
}

// Torn-read rejection: corrupt a slot's begin-sequence word to simulate a
// writer stalled mid-overwrite of exactly that slot. The reader must refuse
// the payload, skip the one record, and charge it to lost() — never return
// garbage.
TEST(SpscRing, TornSlotIsSkippedNotReturned) {
  RingBuf buf;
  SpscWriter writer;
  writer.Init(buf.words, /*capacity=*/8, /*word_count=*/1);
  SpscReader reader;
  ASSERT_TRUE(reader.Bind(buf.words, SpscRingBytes(8, 1)));

  for (uint64_t i = 0; i < 3; ++i) {
    writer.Push(&i);
  }
  uint64_t out[1];
  uint64_t gap = 0;
  ASSERT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kRecord);
  EXPECT_EQ(out[0], 0u);

  // Record 1 now looks like the writer bumped `begin` (started overwriting)
  // but never finished: begin carries a future sequence, end the old one.
  *SlotWord(buf, 8, 1, /*seq=*/1, /*word=*/0) = 1 + 8 + 1;
  // kEmpty means "do not use words_out" — the reject is signalled by the
  // return value and the charged gap, not by leaving the scratch pristine.
  EXPECT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kEmpty);
  EXPECT_EQ(gap, 1u);           // the skip is reported, not silent
  EXPECT_EQ(reader.lost(), 1u);
  EXPECT_EQ(reader.next_seq(), 2u);

  ASSERT_EQ(reader.PollNext(out, &gap), SpscReader::Poll::kRecord);
  EXPECT_EQ(out[0], 2u);        // stream continues after the skip
  EXPECT_EQ(gap, 0u);
}

TEST(SpscRing, BindRejectsBadGeometry) {
  RingBuf buf;
  SpscReader reader;
  // All-zero memory: geometry word is 0.
  EXPECT_FALSE(reader.Bind(buf.words, sizeof(buf)));
  // Too few bytes for even a header.
  EXPECT_FALSE(reader.Bind(buf.words, sizeof(SpscRingHeader) - 1));

  SpscWriter writer;
  writer.Init(buf.words, /*capacity=*/8, /*word_count=*/2);
  // Valid ring, but the mapping claims fewer bytes than the geometry needs.
  EXPECT_FALSE(reader.Bind(buf.words, SpscRingBytes(8, 2) - 1));
  ASSERT_TRUE(reader.Bind(buf.words, SpscRingBytes(8, 2)));

  // Handcrafted invalid geometries a hostile/stale region could carry.
  auto* header = reinterpret_cast<SpscRingHeader*>(buf.words);
  header->geometry.store((uint64_t{6} << 32) | 2, std::memory_order_release);
  EXPECT_FALSE(reader.Bind(buf.words, sizeof(buf)));  // capacity not pow2
  header->geometry.store(uint64_t{8} << 32, std::memory_order_release);
  EXPECT_FALSE(reader.Bind(buf.words, sizeof(buf)));  // word_count 0
  header->geometry.store((uint64_t{8} << 32) | (SpscReader::kMaxWordCount + 1),
                         std::memory_order_release);
  EXPECT_FALSE(reader.Bind(buf.words, sizeof(buf)));  // word_count too large
}

// ---- RateLimiter ----------------------------------------------------------

TEST(RateLimiter, UnlimitedByDefault) {
  RateLimiter limiter;
  EXPECT_TRUE(limiter.unlimited());
  for (uint64_t c = 0; c < 1000; ++c) {
    EXPECT_TRUE(limiter.Admit(c));
  }
  EXPECT_EQ(limiter.admitted(), 1000u);
  EXPECT_EQ(limiter.suppressed(), 0u);
  // Any zero knob means unlimited — suppression is strictly opt-in.
  limiter.Configure(RateLimiter::Config{/*burst=*/4, /*tokens=*/0, /*interval=*/100});
  EXPECT_TRUE(limiter.unlimited());
  limiter.Configure(RateLimiter::Config{/*burst=*/0, /*tokens=*/1, /*interval=*/100});
  EXPECT_TRUE(limiter.unlimited());
}

TEST(RateLimiter, BurstThenSuppress) {
  RateLimiter limiter(RateLimiter::Config{/*burst=*/4, /*tokens=*/2, /*interval=*/1000});
  ASSERT_FALSE(limiter.unlimited());
  // A same-cycle flood: the bucket starts full, drains, then suppresses.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (limiter.Admit(100)) ++admitted;
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(limiter.admitted(), 4u);
  EXPECT_EQ(limiter.suppressed(), 6u);
  EXPECT_EQ(limiter.tokens(), 0u);
}

// Refill is anchored to the first event's cycle and advances in whole
// intervals of *simulated* time — the same event sequence always gets the
// same admit/suppress decisions.
TEST(RateLimiter, DeterministicIntervalRefill) {
  RateLimiter limiter(RateLimiter::Config{/*burst=*/4, /*tokens=*/2, /*interval=*/1000});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(limiter.Admit(100));  // drain the initial burst; anchor = 100
  }
  EXPECT_FALSE(limiter.Admit(1099));  // 999 cycles: not a full interval yet
  EXPECT_TRUE(limiter.Admit(1100));   // one interval -> +2 tokens, spend 1
  EXPECT_TRUE(limiter.Admit(1100));   // spend the second
  EXPECT_FALSE(limiter.Admit(1100));  // dry again
  EXPECT_TRUE(limiter.Admit(3105));   // two intervals -> +4, capped at burst=4
  EXPECT_EQ(limiter.tokens(), 3u);
  EXPECT_EQ(limiter.admitted() + limiter.suppressed(), 9u);

  // Replaying the identical cycle sequence reproduces the identical decisions.
  RateLimiter replay(RateLimiter::Config{/*burst=*/4, /*tokens=*/2, /*interval=*/1000});
  const uint64_t cycles[] = {100, 100, 100, 100, 1099, 1100, 1100, 1100, 3105};
  const bool expect[] = {true, true, true, true, false, true, true, false, true};
  for (size_t i = 0; i < sizeof(cycles) / sizeof(cycles[0]); ++i) {
    EXPECT_EQ(replay.Admit(cycles[i]), expect[i]) << "event " << i;
  }
}

TEST(RateLimiter, RefillNeverOverfillsBucket) {
  RateLimiter limiter(RateLimiter::Config{/*burst=*/3, /*tokens=*/100, /*interval=*/10});
  EXPECT_TRUE(limiter.Admit(0));  // prime; 2 tokens left
  // A huge quiet period refills far more than the bucket holds: cap at burst.
  EXPECT_TRUE(limiter.Admit(1'000'000));
  EXPECT_EQ(limiter.tokens(), 2u);  // refilled to 3, spent 1
}

// ---- ShmRegion ------------------------------------------------------------

std::string TestShmPath(const char* tag) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "/tmp/tock_telemetry_test_%s_%d.shm", tag,
                static_cast<int>(getpid()));
  return buf;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

TEST(ShmRegion, CreateWriteReadOnlyRoundTrip) {
  const std::string path = TestShmPath("roundtrip");
  std::string error;
  ShmRegion writer;
  ASSERT_TRUE(writer.CreateOrReplace(path, 4096, &error)) << error;
  EXPECT_EQ(writer.path(), path);  // a name with '/' is a verbatim path
  EXPECT_EQ(writer.size(), 4096u);
  ASSERT_TRUE(FileExists(path));

  auto* words = static_cast<std::atomic<uint64_t>*>(writer.base());
  EXPECT_EQ(words[0].load(std::memory_order_relaxed), 0u);  // starts zeroed
  words[0].store(0x1122334455667788ull, std::memory_order_release);
  words[511].store(42, std::memory_order_release);

  ShmRegion reader;
  ASSERT_TRUE(reader.OpenReadOnly(path, &error)) << error;
  EXPECT_EQ(reader.size(), 4096u);
  const auto* rwords = static_cast<const std::atomic<uint64_t>*>(reader.base());
  EXPECT_EQ(rwords[0].load(std::memory_order_acquire), 0x1122334455667788ull);
  EXPECT_EQ(rwords[511].load(std::memory_order_acquire), 42u);

  reader.Close();
  EXPECT_TRUE(FileExists(path));  // readers never unlink
  writer.Close();
  EXPECT_FALSE(FileExists(path));  // the creator does
}

TEST(ShmRegion, ReleaseOwnershipLeavesFileBehind) {
  const std::string path = TestShmPath("keep");
  std::string error;
  {
    ShmRegion writer;
    ASSERT_TRUE(writer.CreateOrReplace(path, 256, &error)) << error;
    writer.ReleaseOwnership();
  }
  EXPECT_TRUE(FileExists(path));
  ShmRegion reader;
  EXPECT_TRUE(reader.OpenReadOnly(path, &error)) << error;
  reader.Close();
  ::unlink(path.c_str());
}

TEST(ShmRegion, OpenMissingFails) {
  ShmRegion region;
  std::string error;
  EXPECT_FALSE(region.OpenReadOnly("/tmp/tock_telemetry_test_does_not_exist.shm",
                                   &error));
  EXPECT_FALSE(error.empty());
}

// ---- End-to-end: board -> region -> tap -----------------------------------

const char* kChatterSource = R"(
_start:
    li s1, 40
loop:
    la a0, msg
    li a1, 2
    call console_print
    li a0, 150
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "t\n"
)";

// A single-app board wired to block `index` of an existing TelemetryRegion.
std::unique_ptr<SimBoard> MakeTelemetryBoard(TelemetryRegion* region,
                                             size_t index,
                                             const TelemetryConfig& config) {
  BoardConfig bc;
  bc.kernel.telemetry = config;
  if (region != nullptr) {
    bc.telemetry = region->board(index);
  }
  auto board = std::make_unique<SimBoard>(bc);
  AppSpec app;
  app.name = "chatter";
  app.source = kChatterSource;
  EXPECT_NE(board->installer().Install(app), 0u) << board->installer().error();
  EXPECT_EQ(board->Boot(), 1);
  return board;
}

#define SKIP_WITHOUT_TELEMETRY()                                        \
  do {                                                                  \
    if (!KernelTrace::kEnabled) {                                       \
      GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";      \
    }                                                                   \
    if (!KernelConfig::telemetry_compiled) {                            \
      GTEST_SKIP() << "telemetry compiled out (TOCK_TELEMETRY=OFF)";    \
    }                                                                   \
  } while (0)

// Every event the kernel traced must come out of the tap, byte-identical,
// in order — and the emitted counter must reconcile with what was received.
TEST(Telemetry, TapReceivesExactlyTheKernelTrace) {
  SKIP_WITHOUT_TELEMETRY();
  const std::string path = TestShmPath("e2e");
  TelemetryRegion region;
  std::string error;
  ASSERT_TRUE(region.Create({path, /*board_count=*/1, /*ring_capacity=*/4096},
                            TelemetryConfig{}, &error))
      << error;
  auto board = MakeTelemetryBoard(&region, 0, TelemetryConfig{});
  board->Run(300'000);

  const KernelStats& stats = board->kernel().trace().stats();
  ASSERT_GT(stats.telemetry_events_emitted, 0u);
  EXPECT_EQ(stats.telemetry_events_dropped, 0u);  // 4096-deep ring, short run
  EXPECT_EQ(stats.telemetry_suppressed, 0u);      // limiter off by default

  TelemetryTap tap;
  ASSERT_TRUE(tap.Attach(region.base(), region.size(), &error)) << error;
  ASSERT_EQ(tap.board_count(), 1u);
  SpscReader* reader = tap.events(0);
  std::vector<TraceEvent> received;
  uint64_t words[kTelemetryRecordWords];
  uint64_t gap = 0;
  while (reader->PollNext(words, &gap) == SpscReader::Poll::kRecord) {
    ASSERT_EQ(gap, 0u);
    received.push_back(DecodeTelemetryRecord(words));
  }
  EXPECT_EQ(received.size(), stats.telemetry_events_emitted);
  EXPECT_EQ(reader->lost(), 0u);

  // The kernel's own ring keeps the newest events; the tap stream's tail must
  // match it field-for-field (encode/decode is lossless).
  std::vector<TraceEvent> kernel_events;
  board->kernel().trace().events().ForEach(
      [&](const TraceEvent& e) { kernel_events.push_back(e); });
  ASSERT_LE(kernel_events.size(), received.size());
  const size_t tail = received.size() - kernel_events.size();
  for (size_t i = 0; i < kernel_events.size(); ++i) {
    EXPECT_EQ(received[tail + i].cycle, kernel_events[i].cycle) << i;
    EXPECT_EQ(received[tail + i].kind, kernel_events[i].kind) << i;
    EXPECT_EQ(received[tail + i].pid, kernel_events[i].pid) << i;
    EXPECT_EQ(received[tail + i].arg, kernel_events[i].arg) << i;
  }
}

// With a deliberately tiny ring, a late-attaching tap reconciles exactly:
// received + reported gaps == events emitted, and the writer-side dropped
// counter agrees with the reader-side loss.
TEST(Telemetry, TinyRingDropGapReconciles) {
  SKIP_WITHOUT_TELEMETRY();
  const std::string path = TestShmPath("tiny");
  TelemetryRegion region;
  std::string error;
  ASSERT_TRUE(region.Create({path, /*board_count=*/1, /*ring_capacity=*/16},
                            TelemetryConfig{}, &error))
      << error;
  auto board = MakeTelemetryBoard(&region, 0, TelemetryConfig{});
  board->Run(300'000);

  const KernelStats& stats = board->kernel().trace().stats();
  ASSERT_GT(stats.telemetry_events_emitted, 16u);
  EXPECT_GT(stats.telemetry_events_dropped, 0u);

  TelemetryTap tap;
  ASSERT_TRUE(tap.Attach(region.base(), region.size(), &error)) << error;
  SpscReader* reader = tap.events(0);
  uint64_t words[kTelemetryRecordWords];
  uint64_t gap = 0;
  uint64_t received = 0;
  uint64_t gaps = 0;
  while (reader->PollNext(words, &gap) == SpscReader::Poll::kRecord) {
    ++received;
    gaps += gap;
  }
  EXPECT_EQ(received + gaps, stats.telemetry_events_emitted);
  EXPECT_EQ(gaps, reader->lost());
  EXPECT_EQ(gaps, stats.telemetry_events_dropped);
  EXPECT_LE(received, 16u);
}

// The storm suppressor throttles the *transport*, never the simulation: a
// throttled board runs bit-identically to an unthrottled one, and
// admitted + suppressed on the throttled board equals the unthrottled total.
TEST(Telemetry, StormSuppressorReconcilesAndDoesNotPerturb) {
  SKIP_WITHOUT_TELEMETRY();
  TelemetryConfig open;
  TelemetryConfig throttled;
  throttled.storm_burst = 8;
  throttled.storm_tokens_per_interval = 1;
  throttled.storm_interval_cycles = 50'000;

  const std::string path_a = TestShmPath("storm_a");
  const std::string path_b = TestShmPath("storm_b");
  TelemetryRegion region_a;
  TelemetryRegion region_b;
  std::string error;
  ASSERT_TRUE(region_a.Create({path_a, 1, 4096}, open, &error)) << error;
  ASSERT_TRUE(region_b.Create({path_b, 1, 4096}, throttled, &error)) << error;
  auto board_a = MakeTelemetryBoard(&region_a, 0, open);
  auto board_b = MakeTelemetryBoard(&region_b, 0, throttled);
  board_a->Run(300'000);
  board_b->Run(300'000);

  const KernelStats& sa = board_a->kernel().trace().stats();
  const KernelStats& sb = board_b->kernel().trace().stats();
  EXPECT_EQ(sb.telemetry_suppressed, region_b.board(0)->limiter().suppressed());
  ASSERT_GT(sb.telemetry_suppressed, 0u) << "storm knobs never engaged";
  EXPECT_EQ(sb.telemetry_events_emitted + sb.telemetry_suppressed,
            sa.telemetry_events_emitted);

  // Identical simulated behavior: the stats dump (which excludes the
  // transport counters) and the trace dump must match byte-for-byte.
  std::string dump_a;
  std::string dump_b;
  board_a->kernel().trace().DumpStats(dump_a);
  board_a->kernel().trace().DumpTrace(dump_a);
  board_b->kernel().trace().DumpStats(dump_b);
  board_b->kernel().trace().DumpTrace(dump_b);
  EXPECT_EQ(dump_a, dump_b);
}

// Snapshots carry absolute state: a tap that attaches mid-run (or after the
// run) reads the full KernelStats vector and per-process rows, consistent
// under the seqlock.
TEST(Telemetry, SnapshotMirrorsKernelState) {
  SKIP_WITHOUT_TELEMETRY();
  const std::string path = TestShmPath("snap");
  TelemetryRegion region;
  std::string error;
  ASSERT_TRUE(region.Create({path, 1, 4096}, TelemetryConfig{}, &error)) << error;

  // Before any publish, a snapshot read succeeds and reports seq 0.
  TelemetryTap tap;
  ASSERT_TRUE(tap.Attach(region.base(), region.size(), &error)) << error;
  TelemetrySnapshot snap;
  ASSERT_TRUE(tap.ReadSnapshot(0, &snap));
  EXPECT_EQ(snap.seq, 0u);

  auto board = MakeTelemetryBoard(&region, 0, TelemetryConfig{});
  board->Run(300'000);
  const uint64_t now = board->mcu().CyclesNow();
  region.board(0)->PublishSnapshot(now);

  ASSERT_TRUE(tap.ReadSnapshot(0, &snap));
  EXPECT_GT(snap.seq, 0u);
  EXPECT_EQ(snap.cycle, now);
  const KernelStats& stats = board->kernel().stats();
  for (size_t i = 0; i < kTelemetryStatWords; ++i) {
    EXPECT_EQ(snap.stats[i], StatValue(stats, static_cast<StatId>(i)))
        << StatName(static_cast<StatId>(i));
  }
  EXPECT_EQ(snap.proc_names[0], "chatter");
  ProcStats ps = board->kernel().GetProcStats(0);
  for (size_t f = 0; f < kTelemetryProcStatWords; ++f) {
    EXPECT_EQ(snap.procs[0][f],
              ProcStatValue(ps, static_cast<ProcStatField>(f)));
  }
}

// A tap must fail closed on anything that is not a well-formed region of the
// same layout version: bad magic, truncation, garbage.
TEST(Telemetry, TapRejectsMalformedRegions) {
  SKIP_WITHOUT_TELEMETRY();
  const std::string path = TestShmPath("reject");
  TelemetryRegion region;
  std::string error;
  ASSERT_TRUE(region.Create({path, 1, 64}, TelemetryConfig{}, &error)) << error;

  TelemetryTap tap;
  EXPECT_FALSE(tap.Attach(nullptr, region.size(), &error));
  EXPECT_FALSE(tap.Attach(region.base(), sizeof(TelemetryShmHeader) - 1, &error));
  EXPECT_FALSE(tap.Attach(region.base(), region.size() - 1, &error));
  ASSERT_TRUE(tap.Attach(region.base(), region.size(), &error)) << error;

  auto* header = reinterpret_cast<TelemetryShmHeader*>(region.base());
  const uint64_t good_magic = header->magic.load(std::memory_order_relaxed);
  header->magic.store(good_magic + 1, std::memory_order_release);
  EXPECT_FALSE(tap.Attach(region.base(), region.size(), &error));
  header->magic.store(good_magic, std::memory_order_release);

  const uint64_t good_version = header->version.load(std::memory_order_relaxed);
  header->version.store(good_version + 1, std::memory_order_release);
  EXPECT_FALSE(tap.Attach(region.base(), region.size(), &error));
  header->version.store(good_version, std::memory_order_release);
  EXPECT_TRUE(tap.Attach(region.base(), region.size(), &error)) << error;
}

// ---- Zero-perturbation bit-identity ---------------------------------------

// Single board: stats + trace dumps with telemetry attached are byte-identical
// to a board without it. (The transport counters are excluded from dumps by
// design — StatIsTelemetryTransport — which is exactly what this locks in.)
TEST(Telemetry, BoardDumpBitIdenticalWithAndWithoutTelemetry) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  std::string plain_dump;
  {
    auto board = MakeTelemetryBoard(nullptr, 0, TelemetryConfig{});
    board->Run(400'000);
    board->kernel().trace().DumpStats(plain_dump);
    board->kernel().trace().DumpTrace(plain_dump);
  }
  if (!KernelConfig::telemetry_compiled) {
    // Half the guarantee still holds under -DTOCK_TELEMETRY=OFF: the dump is
    // a pure function of the simulation. Nothing to compare against here.
    GTEST_SKIP() << "telemetry compiled out (TOCK_TELEMETRY=OFF)";
  }
  const std::string path = TestShmPath("identity");
  TelemetryRegion region;
  std::string error;
  ASSERT_TRUE(region.Create({path, 1, 256}, TelemetryConfig{}, &error)) << error;
  auto board = MakeTelemetryBoard(&region, 0, TelemetryConfig{});
  board->Run(400'000);
  ASSERT_GT(board->kernel().stats().telemetry_events_emitted, 0u);
  std::string telemetry_dump;
  board->kernel().trace().DumpStats(telemetry_dump);
  board->kernel().trace().DumpTrace(telemetry_dump);
  EXPECT_EQ(plain_dump, telemetry_dump);
}

// Fleet: a two-board radio deployment publishes telemetry from every board and
// still produces bit-identical fingerprints (stats, trace, delivery log) to a
// fleet without telemetry — and to itself under a different host thread count.
std::string BeaconSource(int node) {
  char buf[768];
  std::snprintf(buf, sizeof(buf), R"(
_start:
    mv s0, a0
    li s1, 0
    li a0, %d
    call sleep_ticks
loop:
    li t0, %d
    sb t0, 0(s0)
    sb s1, 1(s0)
    li a0, 0x30001
    li a1, 0
    mv a2, s0
    li a3, 2
    li a4, 4
    ecall
    li a0, 0x30001
    li a1, 1
    li a2, 0xFFFF
    li a3, 2
    li a4, 2
    ecall
    li a0, 2
    li a1, 0x30001
    li a2, 0
    li a4, 0
    ecall
    addi s1, s1, 1
    li a0, 40000
    call sleep_ticks
    j loop
)",
                node * 5000, node);
  return buf;
}

struct TelemetryFleet {
  TelemetryFleet(unsigned threads, TelemetryRegion* region) {
    FleetConfig config;
    config.threads = threads;
    fleet = std::make_unique<Fleet>(config);
    for (size_t i = 0; i < 2; ++i) {
      BoardConfig bc;
      bc.rng_seed = 0xF00D + static_cast<uint32_t>(i);
      bc.radio_addr = static_cast<uint16_t>(i + 1);
      bc.medium = &fleet->medium();
      bc.allow_scheduler_env = false;
      if (region != nullptr) {
        bc.telemetry = region->board(i);
      }
      auto board = std::make_unique<SimBoard>(bc);
      board->radio_hw().EnableDeliveryLog();
      AppSpec beacon;
      beacon.name = "beacon";
      beacon.source = BeaconSource(static_cast<int>(i + 1));
      EXPECT_NE(board->installer().Install(beacon), 0u)
          << board->installer().error();
      EXPECT_EQ(board->Boot(), 1);
      fleet->AddBoard(board.get());
      boards.push_back(std::move(board));
    }
    fleet->AlignClocks();
  }

  std::string Fingerprint(size_t i) {
    SimBoard& board = *boards[i];
    std::string out;
    char line[128];
    std::snprintf(line, sizeof(line), "cycles=%llu insns=%llu\n",
                  static_cast<unsigned long long>(board.mcu().CyclesNow()),
                  static_cast<unsigned long long>(
                      board.kernel().instructions_retired()));
    out += line;
    board.kernel().trace().DumpStats(out);
    board.kernel().trace().DumpTrace(out);
    for (const RadioDeliveryRecord& r : board.radio_hw().delivery_log()) {
      std::snprintf(line, sizeof(line),
                    "deliver cycle=%llu src=%u dst=%u len=%u sum=%u\n",
                    static_cast<unsigned long long>(r.cycle), r.src, r.dst,
                    r.len, r.payload_sum);
      out += line;
    }
    return out;
  }

  std::unique_ptr<Fleet> fleet;
  std::vector<std::unique_ptr<SimBoard>> boards;
};

TEST(Telemetry, FleetFingerprintBitIdenticalWithTelemetry) {
  SKIP_WITHOUT_TELEMETRY();
  const std::string path_1 = TestShmPath("fleet1");
  const std::string path_4 = TestShmPath("fleet4");
  TelemetryRegion region_1;
  TelemetryRegion region_4;
  std::string error;
  ASSERT_TRUE(region_1.Create({path_1, 2, 1024}, TelemetryConfig{}, &error))
      << error;
  ASSERT_TRUE(region_4.Create({path_4, 2, 1024}, TelemetryConfig{}, &error))
      << error;

  TelemetryFleet plain(1, nullptr);
  TelemetryFleet tele_solo(1, &region_1);
  TelemetryFleet tele_quad(4, &region_4);
  plain.fleet->Run(400'000);
  tele_solo.fleet->Run(400'000);
  tele_quad.fleet->Run(400'000);

  uint64_t total_rx = 0;
  for (size_t i = 0; i < 2; ++i) {
    // Telemetry on vs. off: nothing simulated may change.
    EXPECT_EQ(plain.Fingerprint(i), tele_solo.Fingerprint(i)) << "board " << i;
    // Telemetry on, 1 vs. 4 host threads: publishing stays deterministic.
    EXPECT_EQ(tele_solo.Fingerprint(i), tele_quad.Fingerprint(i))
        << "board " << i;
    // And the transport itself must be as deterministic as the simulation:
    // both telemetry fleets emitted the identical event count per board.
    EXPECT_EQ(tele_solo.boards[i]->kernel().stats().telemetry_events_emitted,
              tele_quad.boards[i]->kernel().stats().telemetry_events_emitted);
    ASSERT_GT(tele_solo.boards[i]->kernel().stats().telemetry_events_emitted,
              0u);
    total_rx += plain.boards[i]->radio_hw().packets_received();
  }
  EXPECT_GT(total_rx, 0u);  // the run must exercise delivery to prove anything
}

// ---- Concurrency (the TSan leg's target) ----------------------------------

// A reader thread hammers the live region — event ring and seqlock snapshot —
// while the board simulates on this thread. Every shared word is an atomic,
// so this runs clean under -fsanitize=thread; the assertions check the reader
// never saw impossible state (a record from the future, a torn snapshot).
TEST(TelemetryConcurrency, ReaderThreadRacesLiveWriter) {
  SKIP_WITHOUT_TELEMETRY();
  const std::string path = TestShmPath("race");
  TelemetryRegion region;
  std::string error;
  // Tiny ring so the writer laps the reader constantly — the torn-read and
  // resync paths get exercised, not just the happy path.
  ASSERT_TRUE(region.Create({path, 1, 16}, TelemetryConfig{}, &error)) << error;
  auto board = MakeTelemetryBoard(&region, 0, TelemetryConfig{});

  std::atomic<bool> done{false};
  std::atomic<uint64_t> records_read{0};
  std::atomic<uint64_t> snapshots_read{0};
  std::atomic<bool> reader_ok{true};
  std::thread reader_thread([&] {
    TelemetryTap tap;
    std::string attach_error;
    if (!tap.Attach(region.base(), region.size(), &attach_error)) {
      reader_ok.store(false);
      return;
    }
    SpscReader* reader = tap.events(0);
    uint64_t words[kTelemetryRecordWords];
    uint64_t gap = 0;
    uint64_t last_cycle = 0;
    // Sample `done` BEFORE each drain pass: when the writer finishes while a
    // pass is in flight, one more full pass still runs, so the reader always
    // drains the ring tail even if the host scheduler never ran this thread
    // concurrently with the (short) simulation — a real risk on 1-core hosts.
    for (;;) {
      const bool final_pass = done.load(std::memory_order_acquire);
      while (reader->PollNext(words, &gap) == SpscReader::Poll::kRecord) {
        const TraceEvent event = DecodeTelemetryRecord(words);
        // Monotonicity survives losses: a torn read returning stale or
        // garbage payload would trip this.
        if (event.cycle < last_cycle) {
          reader_ok.store(false);
        }
        last_cycle = event.cycle;
        records_read.fetch_add(1, std::memory_order_relaxed);
      }
      TelemetrySnapshot snap;
      if (tap.ReadSnapshot(0, &snap)) {
        snapshots_read.fetch_add(1, std::memory_order_relaxed);
      }
      if (final_pass) break;
    }
  });

  board->Run(3'000'000);
  done.store(true, std::memory_order_release);
  reader_thread.join();

  EXPECT_TRUE(reader_ok.load());
  EXPECT_GT(board->kernel().stats().telemetry_events_emitted, 0u);
  EXPECT_GT(records_read.load() + snapshots_read.load(), 0u);
}

// ---- Periodic artifact flush ----------------------------------------------

// With trace_export_flush_cycles set, a run that never reaches its destructor
// (killed fleet, crashed host) still leaves a complete, parseable artifact:
// the board rewrites it atomically every flush period.
TEST(Telemetry, PeriodicFlushLeavesValidArtifactMidRun) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  char path_buf[128];
  std::snprintf(path_buf, sizeof(path_buf), "/tmp/tock_telemetry_flush_%d.json",
                static_cast<int>(getpid()));
  const std::string path = path_buf;
  ::unlink(path.c_str());

  BoardConfig bc;
  bc.trace_export_path = path;
  bc.trace_export_flush_cycles = 100'000;
  SimBoard board(bc);
  AppSpec app;
  app.name = "chatter";
  app.source = kChatterSource;
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(500'000);

  // The board is still alive — this artifact came from a mid-run flush, not
  // the destructor, which is the whole point.
  ASSERT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));  // the rename is atomic
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.substr(doc.size() - 2), "}\n");
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"tockStats\""), std::string::npos);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace tock
