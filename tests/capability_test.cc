// Capability and composition tests (§4.1, §4.4 — experiments E13/E14).
//
// The positive cases run normally. The negative cases — the entire point of the
// mechanisms — are *compile-time* rejections, verified by invoking the compiler on
// fixtures under tests/compile_fail/ and asserting that compilation fails with the
// expected diagnostic.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "board/composition.h"
#include "board/sim_board.h"
#include "kernel/capability.h"

#ifndef TOCK_SOURCE_DIR
#define TOCK_SOURCE_DIR "."
#endif
#ifndef TOCK_CXX_COMPILER
#define TOCK_CXX_COMPILER "c++"
#endif

namespace tock {
namespace {

// ---- Positive cases -------------------------------------------------------------------

TEST(Capability, TokensAreZeroCost) {
  // "zero-sized types (hence, with zero overhead at runtime)" — C++ empty classes
  // have size 1 but are elided as parameters via EBO-like calling conventions; the
  // point is no *state*: the token carries nothing.
  EXPECT_EQ(sizeof(ProcessManagementCapability), 1u);
  EXPECT_EQ(sizeof(MainLoopCapability), 1u);
  EXPECT_TRUE(std::is_empty_v<ProcessManagementCapability>);
  EXPECT_TRUE(std::is_empty_v<MemoryAllocationCapability>);
}

TEST(Capability, FactoryMintsUsableTokens) {
  SimBoard board;
  AppSpec app;
  app.name = "a";
  app.source = "_start:\nspin:\n    j spin\n";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);
  CapabilityFactory factory;
  ProcessManagementCapability cap = factory.MintProcessManagement();
  EXPECT_TRUE(board.kernel().StopProcess(board.kernel().process(0)->id, cap).ok());
}

TEST(Composition, MatchingPolarityConfiguresCleanly) {
  // An active-low sensor on an active-low-capable controller: compiles, and the
  // runtime configuration succeeds with no latent polarity error.
  SimBoard board;
  // The board's controller is ChipSpi<kActiveLow>; reuse its type.
  using Controller = ChipSpi<SpiCsCaps::kActiveLow>;
  Mcu mcu;
  Spi spi_hw(&mcu.clock(), &mcu.bus(), InterruptLine(&mcu.irq(), 3), SpiCsCaps::kActiveLow);
  mcu.bus().AttachDevice(MemoryMap::kSpi0, &spi_hw);
  KernelRamAllocator kram(MemoryMap::kRamBase, 4096);
  Controller controller(&mcu, MemoryMap::SlotBase(MemoryMap::kSpi0), &kram);

  ActiveLowSensorBinding<Controller> binding(&controller, 0);
  EXPECT_TRUE(binding.Configure().ok());
  EXPECT_FALSE(spi_hw.polarity_config_error());
}

TEST(Composition, DualPolarityControllerAcceptsBothBindings) {
  using FlexController = ChipSpi<SpiCsCaps::kBoth>;
  Mcu mcu;
  Spi spi_hw(&mcu.clock(), &mcu.bus(), InterruptLine(&mcu.irq(), 3), SpiCsCaps::kBoth);
  mcu.bus().AttachDevice(MemoryMap::kSpi0, &spi_hw);
  KernelRamAllocator kram(MemoryMap::kRamBase, 4096);
  FlexController controller(&mcu, MemoryMap::SlotBase(MemoryMap::kSpi0), &kram);

  ActiveLowSensorBinding<FlexController> sensor(&controller, 0);
  EXPECT_TRUE(sensor.Configure().ok());
  ActiveHighDisplayBinding<FlexController> display(&controller, 1);
  EXPECT_TRUE(display.Configure().ok());
  EXPECT_FALSE(spi_hw.polarity_config_error());
}

// ---- Negative (compile-fail) cases ---------------------------------------------------------

// Compiles `fixture` against the project headers; returns (exit_ok, diagnostics).
std::pair<bool, std::string> TryCompile(const std::string& fixture) {
  std::string cmd = std::string(TOCK_CXX_COMPILER) + " -std=c++20 -fsyntax-only -I " +
                    TOCK_SOURCE_DIR + "/src " + TOCK_SOURCE_DIR + "/tests/compile_fail/" +
                    fixture + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 512> chunk;
  while (fgets(chunk.data(), chunk.size(), pipe) != nullptr) {
    output += chunk.data();
  }
  int status = pclose(pipe);
  return {status == 0, output};
}

TEST(CompileFail, CapabilityCannotBeConstructedOutsideFactory) {
  auto [compiled, diagnostics] = TryCompile("capability_unmintable.cc");
  EXPECT_FALSE(compiled) << "unprivileged capability minting compiled!";
  EXPECT_NE(diagnostics.find("private"), std::string::npos) << diagnostics;
}

TEST(CompileFail, PrivilegedApiUnreachableWithoutToken) {
  auto [compiled, diagnostics] = TryCompile("privileged_api_needs_token.cc");
  EXPECT_FALSE(compiled) << "capability-gated API was callable without a token!";
}

TEST(CompileFail, SpiPolarityMismatchIsACompileError) {
  auto [compiled, diagnostics] = TryCompile("spi_polarity_mismatch.cc");
  EXPECT_FALSE(compiled) << "invalid SPI stackup compiled!";
  EXPECT_NE(diagnostics.find("invalid board composition"), std::string::npos) << diagnostics;
}

}  // namespace
}  // namespace tock
