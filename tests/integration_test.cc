// Integration tests: full boards booting real (assembled RV32) applications and
// exercising the kernel, capsules, chips and simulated hardware end to end.
#include <gtest/gtest.h>

#include <string>

#include "board/sim_board.h"

namespace tock {
namespace {

TEST(Integration, HelloWorldPrintsOverConsole) {
  SimBoard board;

  AppSpec app;
  app.name = "hello";
  app.source = R"(
_start:
    la a0, msg
    li a1, 13
    call console_print
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "Hello, Tock!\n"
)";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  board.Run(10'000'000);

  EXPECT_NE(board.uart_hw().output().find("Hello, Tock!"), std::string::npos)
      << "uart output was: '" << board.uart_hw().output() << "'";
  Process* p = board.kernel().process(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->state, ProcessState::kTerminated);
}

TEST(Integration, TwoProcessesInterleaveOutput) {
  SimBoard board;

  auto printer = [](const std::string& text, int reps) {
    std::string source = "_start:\n    li s1, " + std::to_string(reps) +
                         "\nloop:\n"
                         "    la a0, msg\n"
                         "    li a1, " +
                         std::to_string(text.size()) +
                         "\n"
                         "    call console_print\n"
                         "    addi s1, s1, -1\n"
                         "    bnez s1, loop\n"
                         "    li a0, 0\n"
                         "    call tock_exit_terminate\n"
                         "msg:\n"
                         "    .asciz \"" +
                         text + "\"\n";
    return source;
  };

  AppSpec a;
  a.name = "alpha";
  a.source = printer("A", 5);
  AppSpec b;
  b.name = "beta";
  b.source = printer("B", 5);
  ASSERT_NE(board.installer().Install(a), 0u) << board.installer().error();
  ASSERT_NE(board.installer().Install(b), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 2);
  board.Run(50'000'000);

  const std::string& out = board.uart_hw().output();
  EXPECT_EQ(std::count(out.begin(), out.end(), 'A'), 5);
  EXPECT_EQ(std::count(out.begin(), out.end(), 'B'), 5);
  // Both processes multiprogram the console: output interleaves rather than one
  // finishing entirely before the other starts.
  EXPECT_NE(out.find("AB"), std::string::npos);
}

}  // namespace
}  // namespace tock
