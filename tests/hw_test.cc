// Hardware-substrate tests: clock, bus, MPU, and every peripheral model.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/sha256.h"
#include "hw/costs.h"
#include "hw/crypto_accel.h"
#include "hw/flash_ctrl.h"
#include "hw/gpio.h"
#include "hw/mcu.h"
#include "hw/memory_map.h"
#include "hw/radio.h"
#include "hw/rng.h"
#include "hw/spi.h"
#include "hw/temp_sensor.h"
#include "hw/timer.h"
#include "hw/uart.h"

namespace tock {
namespace {

// ---- SimClock ------------------------------------------------------------------------

TEST(SimClock, EventsFireInDeadlineOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.ScheduleAt(100, [&] { order.push_back(1); });
  clock.ScheduleAt(50, [&] { order.push_back(2); });
  clock.ScheduleAt(75, [&] { order.push_back(3); });
  clock.Advance(200);
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(clock.Now(), 200u);
}

TEST(SimClock, SameCycleEventsFireFifo) {
  SimClock clock;
  std::vector<int> order;
  clock.ScheduleAt(10, [&] { order.push_back(1); });
  clock.ScheduleAt(10, [&] { order.push_back(2); });
  clock.Advance(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimClock, EventsObserveTheirOwnDeadlineAsNow) {
  SimClock clock;
  uint64_t seen = 0;
  clock.ScheduleAt(42, [&] { seen = clock.Now(); });
  clock.Advance(100);
  EXPECT_EQ(seen, 42u);
}

TEST(SimClock, EventsScheduledDuringAdvanceFireInWindow) {
  SimClock clock;
  bool nested = false;
  clock.ScheduleAt(10, [&] { clock.ScheduleAfter(5, [&] { nested = true; }); });
  clock.Advance(20);
  EXPECT_TRUE(nested);
}

TEST(SimClock, CancelPreventsFiring) {
  SimClock clock;
  bool fired = false;
  uint64_t id = clock.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(clock.Cancel(id));
  clock.Advance(20);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(clock.HasPendingEvents());
}

TEST(SimClock, NextEventSkipsCancelled) {
  SimClock clock;
  uint64_t early = clock.ScheduleAt(10, [] {});
  clock.ScheduleAt(20, [] {});
  EXPECT_EQ(clock.NextEventAt(), 10u);
  clock.Cancel(early);
  EXPECT_EQ(clock.NextEventAt(), 20u);
}

TEST(SimClock, PastDeadlinesClampToNow) {
  SimClock clock;
  clock.Advance(100);
  bool fired = false;
  clock.ScheduleAt(50, [&] { fired = true; });
  clock.Advance(1);
  EXPECT_TRUE(fired);
}

// ---- MPU -----------------------------------------------------------------------------

TEST(Mpu, DeniesByDefault) {
  Mpu mpu;
  EXPECT_FALSE(mpu.CheckAccess(0x20000000, 4, AccessType::kRead));
}

TEST(Mpu, RegionGrantsConfiguredPermissions) {
  Mpu mpu;
  mpu.ConfigureRegion(0, {0x20000000, 0x1000, true, true, false, true});
  EXPECT_TRUE(mpu.CheckAccess(0x20000000, 4, AccessType::kRead));
  EXPECT_TRUE(mpu.CheckAccess(0x20000FFC, 4, AccessType::kWrite));
  EXPECT_FALSE(mpu.CheckAccess(0x20000000, 4, AccessType::kExecute));
}

TEST(Mpu, AccessMustFitEntirelyInRegion) {
  Mpu mpu;
  mpu.ConfigureRegion(0, {0x1000, 0x10, true, false, false, true});
  EXPECT_TRUE(mpu.CheckAccess(0x100C, 4, AccessType::kRead));
  EXPECT_FALSE(mpu.CheckAccess(0x100E, 4, AccessType::kRead));  // straddles the end
  EXPECT_FALSE(mpu.CheckAccess(0xFFE, 4, AccessType::kRead));   // straddles the start
}

TEST(Mpu, DisabledRegionDoesNotMatch) {
  Mpu mpu;
  mpu.ConfigureRegion(0, {0x1000, 0x10, true, true, true, true});
  mpu.DisableRegion(0);
  EXPECT_FALSE(mpu.CheckAccess(0x1000, 4, AccessType::kRead));
}

TEST(Mpu, ConfigWritesAreCounted) {
  Mpu mpu;
  uint64_t before = mpu.config_writes();
  mpu.ConfigureRegion(0, {});
  mpu.ConfigureRegion(1, {});
  EXPECT_EQ(mpu.config_writes(), before + 2);
}

// ---- MemoryBus -----------------------------------------------------------------------

class BusTest : public ::testing::Test {
 protected:
  Mcu mcu_;
};

TEST_F(BusTest, RamRoundTripLittleEndian) {
  MemoryBus& bus = mcu_.bus();
  EXPECT_TRUE(bus.Write(MemoryMap::kRamBase, 0xA1B2C3D4, 4, Privilege::kPrivileged));
  EXPECT_EQ(*bus.Read(MemoryMap::kRamBase, 4, Privilege::kPrivileged), 0xA1B2C3D4u);
  EXPECT_EQ(*bus.Read(MemoryMap::kRamBase, 1, Privilege::kPrivileged), 0xD4u);
  EXPECT_EQ(*bus.Read(MemoryMap::kRamBase + 3, 1, Privilege::kPrivileged), 0xA1u);
}

TEST_F(BusTest, DirectFlashWriteFaults) {
  MemoryBus& bus = mcu_.bus();
  EXPECT_FALSE(bus.Write(0x100, 1, 4, Privilege::kPrivileged));
  EXPECT_EQ(bus.last_fault().kind, BusFaultKind::kFlashWrite);
  // ...but the flash-controller backdoor works.
  uint8_t data[4] = {1, 2, 3, 4};
  EXPECT_TRUE(bus.ProgramFlash(0x100, data, 4));
  EXPECT_EQ(*bus.Read(0x100, 4, Privilege::kPrivileged), 0x04030201u);
}

TEST_F(BusTest, UnmappedAddressFaults) {
  EXPECT_FALSE(mcu_.bus().Read(0x90000000, 4, Privilege::kPrivileged).has_value());
  EXPECT_EQ(mcu_.bus().last_fault().kind, BusFaultKind::kUnmapped);
}

TEST_F(BusTest, UnprivilegedAccessGoesThroughMpu) {
  MemoryBus& bus = mcu_.bus();
  EXPECT_FALSE(bus.Read(MemoryMap::kRamBase, 4, Privilege::kUnprivileged).has_value());
  EXPECT_EQ(bus.last_fault().kind, BusFaultKind::kMpuViolation);
  mcu_.mpu().ConfigureRegion(0, {MemoryMap::kRamBase, 0x100, true, false, false, true});
  EXPECT_TRUE(bus.Read(MemoryMap::kRamBase, 4, Privilege::kUnprivileged).has_value());
  EXPECT_FALSE(bus.Write(MemoryMap::kRamBase, 0, 4, Privilege::kUnprivileged));
}

TEST_F(BusTest, MmioRequiresAlignedWordAccess) {
  Gpio gpio{InterruptLine(&mcu_.irq(), 2)};
  mcu_.bus().AttachDevice(MemoryMap::kGpio, &gpio);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kGpio);
  EXPECT_TRUE(mcu_.bus().Write(base, 0xF, 4, Privilege::kPrivileged));
  EXPECT_FALSE(mcu_.bus().Write(base + 2, 0xF, 4, Privilege::kPrivileged));
  EXPECT_EQ(mcu_.bus().last_fault().kind, BusFaultKind::kUnalignedMmio);
  EXPECT_FALSE(mcu_.bus().Read(base, 2, Privilege::kPrivileged).has_value());
}

// ---- Mcu energy accounting --------------------------------------------------------------

TEST(Mcu, SleepSkipsToNextEventAndBooksSleepCycles) {
  Mcu mcu;
  mcu.irq().Enable(0);
  mcu.clock().ScheduleAt(10'000, [&] { mcu.irq().Raise(0); });
  uint64_t slept = mcu.SleepUntilInterrupt();
  EXPECT_EQ(slept, 10'000u);
  EXPECT_EQ(mcu.sleep_cycles(), 10'000u);
  EXPECT_TRUE(mcu.irq().AnyPending());
  EXPECT_GT(mcu.SleepFraction(), 0.99);
}

TEST(Mcu, SleepWithNoFutureEventWedges) {
  Mcu mcu;
  EXPECT_EQ(mcu.SleepUntilInterrupt(), 0u);
  EXPECT_TRUE(mcu.wedged());
}

TEST(Mcu, ActiveCyclesCostMoreEnergyThanSleep) {
  Mcu active;
  active.Tick(1000);
  Mcu sleepy;
  sleepy.irq().Enable(0);
  sleepy.clock().ScheduleAt(1000, [&] { sleepy.irq().Raise(0); });
  sleepy.SleepUntilInterrupt();
  EXPECT_GT(active.Energy(), 50 * (sleepy.Energy() - 10.0));  // sleep ~1000x cheaper
}

// ---- UART ----------------------------------------------------------------------------

class UartTest : public ::testing::Test {
 protected:
  UartTest() : uart_(&mcu_.clock(), &mcu_.bus(), InterruptLine(&mcu_.irq(), 0)) {
    mcu_.bus().AttachDevice(MemoryMap::kUart0, &uart_);
    mcu_.irq().Enable(0);
    base_ = MemoryMap::SlotBase(MemoryMap::kUart0);
  }
  void Write(uint32_t reg, uint32_t value) {
    mcu_.bus().Write(base_ + reg, value, 4, Privilege::kPrivileged);
  }
  uint32_t Read(uint32_t reg) {
    return *mcu_.bus().Read(base_ + reg, 4, Privilege::kPrivileged);
  }
  Mcu mcu_;
  Uart uart_;
  uint32_t base_;
};

TEST_F(UartTest, SingleByteTransmitTakesWireTime) {
  Write(UartRegs::kCtrl, UartRegs::Ctrl::kTxEnable.Set().value);
  Write(UartRegs::kTxData, 'X');
  EXPECT_EQ(uart_.output(), "");
  mcu_.Tick(CycleCosts::kUartCyclesPerByte);
  EXPECT_EQ(uart_.output(), "X");
  EXPECT_TRUE(mcu_.irq().IsPending(0));
  EXPECT_TRUE(UartRegs::Status::kTxDone.IsSetIn(Read(UartRegs::kStatus)));
}

TEST_F(UartTest, DmaTransmitMovesWholeBuffer) {
  const char* msg = "dma hello";
  mcu_.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>(msg), 9);
  Write(UartRegs::kCtrl, UartRegs::Ctrl::kTxEnable.Set().value);
  Write(UartRegs::kDmaTxAddr, MemoryMap::kRamBase);
  Write(UartRegs::kDmaTxLen, 9);
  mcu_.Tick(9 * CycleCosts::kUartCyclesPerByte);
  EXPECT_EQ(uart_.output(), "dma hello");
}

TEST_F(UartTest, TransmitDisabledDoesNothing) {
  Write(UartRegs::kTxData, 'X');
  mcu_.Tick(10 * CycleCosts::kUartCyclesPerByte);
  EXPECT_EQ(uart_.output(), "");
}

TEST_F(UartTest, InjectedRxBytesArrivePaced) {
  Write(UartRegs::kCtrl,
        (UartRegs::Ctrl::kTxEnable.Set() + UartRegs::Ctrl::kRxEnable.Set()).value);
  uart_.InjectRx("ab");
  mcu_.Tick(CycleCosts::kUartCyclesPerByte);
  EXPECT_TRUE(UartRegs::Status::kRxAvail.IsSetIn(Read(UartRegs::kStatus)));
  EXPECT_EQ(Read(UartRegs::kRxData), static_cast<uint32_t>('a'));
  // Reading RXDATA clears the available flag until the next byte lands.
  EXPECT_FALSE(UartRegs::Status::kRxAvail.IsSetIn(Read(UartRegs::kStatus)));
  mcu_.Tick(CycleCosts::kUartCyclesPerByte);
  EXPECT_EQ(Read(UartRegs::kRxData), static_cast<uint32_t>('b'));
}

TEST_F(UartTest, DmaReceiveFillsRamAndInterrupts) {
  Write(UartRegs::kDmaRxAddr, MemoryMap::kRamBase + 64);
  Write(UartRegs::kDmaRxLen, 4);
  uart_.InjectRx("wxyz");
  mcu_.Tick(5 * CycleCosts::kUartCyclesPerByte);
  uint8_t received[4];
  mcu_.bus().ReadBlock(MemoryMap::kRamBase + 64, received, 4);
  EXPECT_EQ(std::memcmp(received, "wxyz", 4), 0);
  EXPECT_TRUE(UartRegs::Status::kRxDone.IsSetIn(Read(UartRegs::kStatus)));
}

// ---- Timers --------------------------------------------------------------------------

TEST(AlarmTimer, FiresAtCompareValue) {
  Mcu mcu;
  AlarmTimer timer(&mcu.clock(), InterruptLine(&mcu.irq(), 1));
  mcu.bus().AttachDevice(MemoryMap::kAlarm, &timer);
  mcu.irq().Enable(1);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kAlarm);

  mcu.bus().Write(base + AlarmRegs::kCompare, 500, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + AlarmRegs::kCtrl, 1, 4, Privilege::kPrivileged);
  mcu.Tick(499);
  EXPECT_FALSE(mcu.irq().IsPending(1));
  mcu.Tick(1);
  EXPECT_TRUE(mcu.irq().IsPending(1));
  uint32_t status = *mcu.bus().Read(base + AlarmRegs::kStatus, 4, Privilege::kPrivileged);
  EXPECT_TRUE(AlarmRegs::Status::kFired.IsSetIn(status));
}

TEST(AlarmTimer, DisableCancelsPendingMatch) {
  Mcu mcu;
  AlarmTimer timer(&mcu.clock(), InterruptLine(&mcu.irq(), 1));
  mcu.bus().AttachDevice(MemoryMap::kAlarm, &timer);
  mcu.irq().Enable(1);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kAlarm);
  mcu.bus().Write(base + AlarmRegs::kCompare, 100, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + AlarmRegs::kCtrl, 1, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + AlarmRegs::kCtrl, 0, 4, Privilege::kPrivileged);
  mcu.Tick(200);
  EXPECT_FALSE(mcu.irq().IsPending(1));
}

TEST(SysTick, ExpiresAfterReload) {
  Mcu mcu;
  SysTick systick(&mcu.clock(), InterruptLine(&mcu.irq(), 10));
  mcu.irq().Enable(10);
  systick.ArmCycles(1000);
  mcu.Tick(999);
  EXPECT_FALSE(systick.Expired());
  mcu.Tick(1);
  EXPECT_TRUE(systick.Expired());
  EXPECT_TRUE(mcu.irq().IsPending(10));
  systick.DisarmAndClear();
  EXPECT_FALSE(systick.Expired());
}

TEST(SysTick, RearmReplacesCountdown) {
  Mcu mcu;
  SysTick systick(&mcu.clock(), InterruptLine(&mcu.irq(), 10));
  systick.ArmCycles(100);
  mcu.Tick(50);
  systick.ArmCycles(100);  // re-arm pushes the deadline out
  mcu.Tick(60);
  EXPECT_FALSE(systick.Expired());
  mcu.Tick(40);
  EXPECT_TRUE(systick.Expired());
}

// ---- GPIO ----------------------------------------------------------------------------

TEST(GpioHw, OutputTogglesAreObservable) {
  Mcu mcu;
  Gpio gpio{InterruptLine(&mcu.irq(), 2)};
  mcu.bus().AttachDevice(MemoryMap::kGpio, &gpio);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kGpio);
  mcu.bus().Write(base + GpioRegs::kDir, 0x1, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + GpioRegs::kOut, 0x1, 4, Privilege::kPrivileged);
  EXPECT_TRUE(gpio.GetOutput(0));
  mcu.bus().Write(base + GpioRegs::kOut, 0x0, 4, Privilege::kPrivileged);
  EXPECT_FALSE(gpio.GetOutput(0));
  EXPECT_EQ(gpio.output_toggles(0), 2u);
}

TEST(GpioHw, EdgeInterruptsRespectEnableMasks) {
  Mcu mcu;
  Gpio gpio{InterruptLine(&mcu.irq(), 2)};
  mcu.bus().AttachDevice(MemoryMap::kGpio, &gpio);
  mcu.irq().Enable(2);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kGpio);
  mcu.bus().Write(base + GpioRegs::kIrqRise, 1u << 4, 4, Privilege::kPrivileged);

  gpio.SetInput(4, true);  // rising edge, enabled
  EXPECT_TRUE(mcu.irq().IsPending(2));
  mcu.irq().Complete(2);
  mcu.bus().Write(base + GpioRegs::kIntClr, 1u << 4, 4, Privilege::kPrivileged);

  gpio.SetInput(4, false);  // falling edge, not enabled
  EXPECT_FALSE(mcu.irq().IsPending(2));
  gpio.SetInput(4, false);  // no edge at all
  EXPECT_FALSE(mcu.irq().IsPending(2));
}

// ---- RNG -----------------------------------------------------------------------------

TEST(RngHw, DeterministicPerSeedAsyncReady) {
  Mcu mcu;
  Rng rng(&mcu.clock(), InterruptLine(&mcu.irq(), 4), 1234);
  mcu.bus().AttachDevice(MemoryMap::kRng, &rng);
  mcu.irq().Enable(4);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kRng);

  mcu.bus().Write(base + RngRegs::kCtrl, 1, 4, Privilege::kPrivileged);
  EXPECT_FALSE(RngRegs::Status::kReady.IsSetIn(
      *mcu.bus().Read(base + RngRegs::kStatus, 4, Privilege::kPrivileged)));
  mcu.Tick(CycleCosts::kRngCyclesPerWord);
  EXPECT_TRUE(RngRegs::Status::kReady.IsSetIn(
      *mcu.bus().Read(base + RngRegs::kStatus, 4, Privilege::kPrivileged)));
  uint32_t v1 = *mcu.bus().Read(base + RngRegs::kData, 4, Privilege::kPrivileged);

  Mcu mcu2;
  Rng rng2(&mcu2.clock(), InterruptLine(&mcu2.irq(), 4), 1234);
  mcu2.bus().AttachDevice(MemoryMap::kRng, &rng2);
  mcu2.bus().Write(base + RngRegs::kCtrl, 1, 4, Privilege::kPrivileged);
  mcu2.Tick(CycleCosts::kRngCyclesPerWord);
  EXPECT_EQ(*mcu2.bus().Read(base + RngRegs::kData, 4, Privilege::kPrivileged), v1);
}

// ---- Crypto accelerators ------------------------------------------------------------------

class AccelTest : public ::testing::Test {
 protected:
  AccelTest()
      : aes_(&mcu_.clock(), &mcu_.bus(), InterruptLine(&mcu_.irq(), 5)),
        sha_(&mcu_.clock(), &mcu_.bus(), InterruptLine(&mcu_.irq(), 6)) {
    mcu_.bus().AttachDevice(MemoryMap::kAes, &aes_);
    mcu_.bus().AttachDevice(MemoryMap::kSha, &sha_);
    mcu_.irq().Enable(5);
    mcu_.irq().Enable(6);
  }
  void W(MemoryMap::Slot slot, uint32_t reg, uint32_t v) {
    mcu_.bus().Write(MemoryMap::SlotBase(slot) + reg, v, 4, Privilege::kPrivileged);
  }
  uint32_t R(MemoryMap::Slot slot, uint32_t reg) {
    return *mcu_.bus().Read(MemoryMap::SlotBase(slot) + reg, 4, Privilege::kPrivileged);
  }
  Mcu mcu_;
  AesAccel aes_;
  ShaAccel sha_;
};

TEST_F(AccelTest, AesEcbMatchesSoftwareImplementation) {
  uint8_t key[16];
  uint8_t plain[16];
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<uint8_t>(i);
    plain[i] = static_cast<uint8_t>(0xF0 + i);
  }
  mcu_.bus().WriteBlock(MemoryMap::kRamBase, plain, 16);
  for (int i = 0; i < 4; ++i) {
    uint32_t word;
    std::memcpy(&word, key + 4 * i, 4);
    W(MemoryMap::kAes, AesRegs::kKey0 + 4 * i, word);
  }
  W(MemoryMap::kAes, AesRegs::kSrc, MemoryMap::kRamBase);
  W(MemoryMap::kAes, AesRegs::kDst, MemoryMap::kRamBase + 64);
  W(MemoryMap::kAes, AesRegs::kLen, 16);
  W(MemoryMap::kAes, AesRegs::kCtrl, AesRegs::Ctrl::kStart.Set().value);

  EXPECT_TRUE(AesRegs::Status::kBusy.IsSetIn(R(MemoryMap::kAes, AesRegs::kStatus)));
  mcu_.Tick(CycleCosts::kAesCyclesPerBlock);
  EXPECT_TRUE(AesRegs::Status::kDone.IsSetIn(R(MemoryMap::kAes, AesRegs::kStatus)));
  EXPECT_TRUE(mcu_.irq().IsPending(5));

  uint8_t hw_out[16];
  mcu_.bus().ReadBlock(MemoryMap::kRamBase + 64, hw_out, 16);
  Aes128 sw(key);
  uint8_t sw_out[16];
  std::memcpy(sw_out, plain, 16);
  sw.EncryptBlock(sw_out);
  EXPECT_EQ(std::memcmp(hw_out, sw_out, 16), 0);
}

TEST_F(AccelTest, AesEcbRejectsPartialBlocks) {
  W(MemoryMap::kAes, AesRegs::kSrc, MemoryMap::kRamBase);
  W(MemoryMap::kAes, AesRegs::kDst, MemoryMap::kRamBase);
  W(MemoryMap::kAes, AesRegs::kLen, 10);
  W(MemoryMap::kAes, AesRegs::kCtrl, AesRegs::Ctrl::kStart.Set().value);
  EXPECT_TRUE(AesRegs::Status::kError.IsSetIn(R(MemoryMap::kAes, AesRegs::kStatus)));
}

TEST_F(AccelTest, ShaDigestMatchesSoftware) {
  const char* msg = "abc";
  mcu_.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>(msg), 3);
  W(MemoryMap::kSha, ShaRegs::kSrc, MemoryMap::kRamBase);
  W(MemoryMap::kSha, ShaRegs::kLen, 3);
  W(MemoryMap::kSha, ShaRegs::kCtrl, ShaRegs::Ctrl::kStart.Set().value);
  mcu_.Tick(10 * CycleCosts::kShaCyclesPerBlock);
  ASSERT_TRUE(ShaRegs::Status::kDone.IsSetIn(R(MemoryMap::kSha, ShaRegs::kStatus)));

  auto expected = Sha256::Digest(reinterpret_cast<const uint8_t*>(msg), 3);
  for (int i = 0; i < 8; ++i) {
    uint32_t word = R(MemoryMap::kSha, ShaRegs::kDigest0 + 4 * i);
    uint32_t expected_word;
    std::memcpy(&expected_word, expected.data() + 4 * i, 4);
    EXPECT_EQ(word, expected_word) << "digest word " << i;
  }
}

TEST_F(AccelTest, ShaLatencyScalesWithInputSize) {
  // Completion must NOT be instantaneous — the asynchrony is what forces the
  // loader's state machine (§3.4).
  std::vector<uint8_t> data(512, 0xAB);
  mcu_.bus().WriteBlock(MemoryMap::kRamBase, data.data(), data.size());
  W(MemoryMap::kSha, ShaRegs::kSrc, MemoryMap::kRamBase);
  W(MemoryMap::kSha, ShaRegs::kLen, 512);
  W(MemoryMap::kSha, ShaRegs::kCtrl, ShaRegs::Ctrl::kStart.Set().value);
  mcu_.Tick(CycleCosts::kShaCyclesPerBlock);
  EXPECT_FALSE(ShaRegs::Status::kDone.IsSetIn(R(MemoryMap::kSha, ShaRegs::kStatus)));
  mcu_.Tick(9 * CycleCosts::kShaCyclesPerBlock);
  EXPECT_TRUE(ShaRegs::Status::kDone.IsSetIn(R(MemoryMap::kSha, ShaRegs::kStatus)));
}

// ---- Flash controller ------------------------------------------------------------------

TEST(FlashCtrl, ProgramCopiesRamToFlashAsynchronously) {
  Mcu mcu;
  FlashController ctrl(&mcu.clock(), &mcu.bus(), InterruptLine(&mcu.irq(), 7));
  mcu.bus().AttachDevice(MemoryMap::kFlashCtrl, &ctrl);
  mcu.irq().Enable(7);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kFlashCtrl);

  const char* payload = "persist me";
  mcu.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>(payload), 10);
  mcu.bus().Write(base + FlashRegs::kDstAddr, 0x10000, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + FlashRegs::kSrcAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + FlashRegs::kLen, 10, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + FlashRegs::kCtrl, 1, 4, Privilege::kPrivileged);

  uint8_t before[10];
  mcu.bus().ReadBlock(0x10000, before, 10);
  EXPECT_NE(std::memcmp(before, payload, 10), 0);  // not yet written

  mcu.Tick(CycleCosts::kFlashWriteCyclesPerPage);
  uint8_t after[10];
  mcu.bus().ReadBlock(0x10000, after, 10);
  EXPECT_EQ(std::memcmp(after, payload, 10), 0);
  EXPECT_TRUE(mcu.irq().IsPending(7));
}

TEST(FlashCtrl, EraseSetsPageToOnes) {
  Mcu mcu;
  FlashController ctrl(&mcu.clock(), &mcu.bus(), InterruptLine(&mcu.irq(), 7));
  mcu.bus().AttachDevice(MemoryMap::kFlashCtrl, &ctrl);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kFlashCtrl);

  uint8_t zeros[16] = {};
  mcu.bus().ProgramFlash(0x10000, zeros, sizeof(zeros));
  mcu.bus().Write(base + FlashRegs::kDstAddr, 0x10000, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + FlashRegs::kCtrl, 2, 4, Privilege::kPrivileged);
  mcu.Tick(CycleCosts::kFlashWriteCyclesPerPage);

  uint8_t data[16];
  mcu.bus().ReadBlock(0x10000, data, sizeof(data));
  for (uint8_t b : data) {
    EXPECT_EQ(b, 0xFF);
  }
}

// ---- Radio + medium ------------------------------------------------------------------------

TEST(RadioHw, BroadcastReachesPeerAfterAirTime) {
  Mcu a, b;
  Radio radio_a(&a.clock(), &a.bus(), InterruptLine(&a.irq(), 8));
  Radio radio_b(&b.clock(), &b.bus(), InterruptLine(&b.irq(), 8));
  a.bus().AttachDevice(MemoryMap::kRadio, &radio_a);
  b.bus().AttachDevice(MemoryMap::kRadio, &radio_b);
  b.irq().Enable(8);
  RadioMedium medium;
  medium.Attach(&radio_a);
  medium.Attach(&radio_b);

  uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
  // Receiver: enabled, RX armed.
  b.bus().Write(base + RadioRegs::kNodeAddr, 2, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kCtrl, 0x3, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxMaxLen, 64, 4, Privilege::kPrivileged);

  // Sender.
  const char* packet = "ping!";
  a.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>(packet), 5);
  a.bus().Write(base + RadioRegs::kNodeAddr, 1, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kCtrl, 0x1, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kDstAddr, 0xFFFF, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kTxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kTxLen, 5, 4, Privilege::kPrivileged);

  EXPECT_EQ(radio_b.packets_received(), 0u);
  b.Tick(CycleCosts::kRadioCyclesPerByte * 13 + 10);
  EXPECT_EQ(radio_b.packets_received(), 1u);
  uint8_t received[5];
  b.bus().ReadBlock(MemoryMap::kRamBase, received, 5);
  EXPECT_EQ(std::memcmp(received, packet, 5), 0);
  EXPECT_TRUE(b.irq().IsPending(8));
}

TEST(RadioHw, UnicastIgnoredByWrongAddress) {
  Mcu a, b;
  Radio radio_a(&a.clock(), &a.bus(), InterruptLine(&a.irq(), 8));
  Radio radio_b(&b.clock(), &b.bus(), InterruptLine(&b.irq(), 8));
  a.bus().AttachDevice(MemoryMap::kRadio, &radio_a);
  b.bus().AttachDevice(MemoryMap::kRadio, &radio_b);
  RadioMedium medium;
  medium.Attach(&radio_a);
  medium.Attach(&radio_b);

  uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
  b.bus().Write(base + RadioRegs::kNodeAddr, 2, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kCtrl, 0x3, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxMaxLen, 64, 4, Privilege::kPrivileged);

  uint8_t payload[3] = {1, 2, 3};
  a.bus().WriteBlock(MemoryMap::kRamBase, payload, 3);
  a.bus().Write(base + RadioRegs::kCtrl, 0x1, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kDstAddr, 77, 4, Privilege::kPrivileged);  // not node 2
  a.bus().Write(base + RadioRegs::kTxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kTxLen, 3, 4, Privilege::kPrivileged);
  b.Tick(CycleCosts::kRadioCyclesPerByte * 20);
  EXPECT_EQ(radio_b.packets_received(), 0u);
}

TEST(RadioHw, RxOverrunDropsPacketAndLatchesStatus) {
  Mcu a, b;
  Radio radio_a(&a.clock(), &a.bus(), InterruptLine(&a.irq(), 8));
  Radio radio_b(&b.clock(), &b.bus(), InterruptLine(&b.irq(), 8));
  a.bus().AttachDevice(MemoryMap::kRadio, &radio_a);
  b.bus().AttachDevice(MemoryMap::kRadio, &radio_b);
  RadioMedium medium;
  medium.Attach(&radio_a);
  medium.Attach(&radio_b);

  uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
  b.bus().Write(base + RadioRegs::kNodeAddr, 2, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kCtrl, 0x3, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxMaxLen, 64, 4, Privilege::kPrivileged);

  a.bus().Write(base + RadioRegs::kNodeAddr, 1, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kCtrl, 0x1, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kDstAddr, 2, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kTxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);

  // First packet lands normally. (Tick the sender too so its TxBusy clears and
  // its clock tracks the shared timeline.)
  a.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>("first"), 5);
  a.bus().Write(base + RadioRegs::kTxLen, 5, 4, Privilege::kPrivileged);
  a.Tick(CycleCosts::kRadioCyclesPerByte * 13 + 10);
  b.Tick(CycleCosts::kRadioCyclesPerByte * 13 + 10);
  ASSERT_EQ(radio_b.packets_received(), 1u);

  // Second packet arrives while kRxDone is still set (receiver never consumed the
  // first): it must be dropped whole — the RX buffer keeps the first payload — and
  // the overrun latched in status + counter. This is the bug this test pins: the
  // old model overwrote the unconsumed frame in place.
  a.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>("wrong"), 5);
  a.bus().Write(base + RadioRegs::kTxLen, 5, 4, Privilege::kPrivileged);
  a.Tick(CycleCosts::kRadioCyclesPerByte * 13 + 10);
  b.Tick(CycleCosts::kRadioCyclesPerByte * 13 + 10);
  EXPECT_EQ(radio_b.packets_received(), 1u);
  EXPECT_EQ(radio_b.rx_overruns(), 1u);
  uint32_t status = *b.bus().Read(base + RadioRegs::kStatus, 4, Privilege::kPrivileged);
  EXPECT_TRUE(RadioRegs::Status::kRxDone.IsSetIn(status));
  EXPECT_TRUE(RadioRegs::Status::kRxOverrun.IsSetIn(status));
  uint8_t kept[5];
  b.bus().ReadBlock(MemoryMap::kRamBase, kept, 5);
  EXPECT_EQ(std::memcmp(kept, "first", 5), 0);

  // Acknowledging (IntClr) frees the buffer: the next packet is accepted again.
  b.bus().Write(base + RadioRegs::kIntClr,
                RadioRegs::Status::kRxDone.Set().value |
                    RadioRegs::Status::kRxOverrun.Set().value,
                4, Privilege::kPrivileged);
  status = *b.bus().Read(base + RadioRegs::kStatus, 4, Privilege::kPrivileged);
  EXPECT_FALSE(RadioRegs::Status::kRxOverrun.IsSetIn(status));
  a.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>("third"), 5);
  a.bus().Write(base + RadioRegs::kTxLen, 5, 4, Privilege::kPrivileged);
  a.Tick(CycleCosts::kRadioCyclesPerByte * 13 + 10);
  b.Tick(CycleCosts::kRadioCyclesPerByte * 13 + 10);
  EXPECT_EQ(radio_b.packets_received(), 2u);
  EXPECT_EQ(radio_b.rx_overruns(), 1u);
  b.bus().ReadBlock(MemoryMap::kRamBase, kept, 5);
  EXPECT_EQ(std::memcmp(kept, "third", 5), 0);
}

TEST(RadioHw, SameCycleArrivalsDeliverInAttachOrder) {
  // Two senders transmit equal-length packets at the same shared-timeline cycle.
  // The total order is (deliver_at, attach index, seq): the radio attached first
  // must win the RX buffer regardless of which Transmit ran first.
  Mcu a, b, c;
  Radio radio_a(&a.clock(), &a.bus(), InterruptLine(&a.irq(), 8));
  Radio radio_b(&b.clock(), &b.bus(), InterruptLine(&b.irq(), 8));
  Radio radio_c(&c.clock(), &c.bus(), InterruptLine(&c.irq(), 8));
  a.bus().AttachDevice(MemoryMap::kRadio, &radio_a);
  b.bus().AttachDevice(MemoryMap::kRadio, &radio_b);
  c.bus().AttachDevice(MemoryMap::kRadio, &radio_c);
  RadioMedium medium;
  medium.Attach(&radio_a);  // attach index 0
  medium.Attach(&radio_b);  // attach index 1
  medium.Attach(&radio_c);  // attach index 2
  radio_b.EnableDeliveryLog();

  uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
  b.bus().Write(base + RadioRegs::kNodeAddr, 2, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kCtrl, 0x3, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  b.bus().Write(base + RadioRegs::kRxMaxLen, 64, 4, Privilege::kPrivileged);

  for (Mcu* m : {&a, &c}) {
    m->bus().Write(base + RadioRegs::kCtrl, 0x1, 4, Privilege::kPrivileged);
    m->bus().Write(base + RadioRegs::kDstAddr, 2, 4, Privilege::kPrivileged);
    m->bus().Write(base + RadioRegs::kTxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  }
  a.bus().Write(base + RadioRegs::kNodeAddr, 1, 4, Privilege::kPrivileged);
  c.bus().Write(base + RadioRegs::kNodeAddr, 3, 4, Privilege::kPrivileged);
  a.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>("AA"), 2);
  c.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>("CC"), 2);

  // Both clocks sit at cycle 0, so both frames arrive at the same cycle. Fire the
  // later-attached sender FIRST: enqueue order must not leak into delivery order.
  c.bus().Write(base + RadioRegs::kTxLen, 2, 4, Privilege::kPrivileged);
  a.bus().Write(base + RadioRegs::kTxLen, 2, 4, Privilege::kPrivileged);
  b.Tick(CycleCosts::kRadioCyclesPerByte * 10 + 10);

  ASSERT_EQ(radio_b.delivery_log().size(), 2u);
  EXPECT_EQ(radio_b.delivery_log()[0].src, 1u);  // attach index 0 delivered first
  EXPECT_FALSE(radio_b.delivery_log()[0].overrun);
  EXPECT_EQ(radio_b.delivery_log()[1].src, 3u);  // loser dropped as an overrun
  EXPECT_TRUE(radio_b.delivery_log()[1].overrun);
  uint8_t kept[2];
  b.bus().ReadBlock(MemoryMap::kRamBase, kept, 2);
  EXPECT_EQ(std::memcmp(kept, "AA", 2), 0);
}

// ---- Link-fault layer -----------------------------------------------------------------------

// Two-node bench for the medium's seeded fault injection: node 1 transmits
// unicast frames to node 2; the test controls the LinkFaultConfig and inspects
// the receiver's buffer, counters, and delivery log.
struct FaultBench {
  FaultBench() {
    a.bus().AttachDevice(MemoryMap::kRadio, &radio_a);
    b.bus().AttachDevice(MemoryMap::kRadio, &radio_b);
    medium.Attach(&radio_a);
    medium.Attach(&radio_b);
    radio_b.EnableDeliveryLog();
    uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
    b.bus().Write(base + RadioRegs::kNodeAddr, 2, 4, Privilege::kPrivileged);
    b.bus().Write(base + RadioRegs::kCtrl, 0x3, 4, Privilege::kPrivileged);
    b.bus().Write(base + RadioRegs::kRxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
    b.bus().Write(base + RadioRegs::kRxMaxLen, 64, 4, Privilege::kPrivileged);
    a.bus().Write(base + RadioRegs::kNodeAddr, 1, 4, Privilege::kPrivileged);
    a.bus().Write(base + RadioRegs::kCtrl, 0x1, 4, Privilege::kPrivileged);
    a.bus().Write(base + RadioRegs::kDstAddr, 2, 4, Privilege::kPrivileged);
    a.bus().Write(base + RadioRegs::kTxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  }

  // Transmits `payload` and advances both clocks through its air time plus any
  // configured fault delays.
  void Send(const std::vector<uint8_t>& payload) {
    uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
    a.bus().WriteBlock(MemoryMap::kRamBase, payload.data(),
                       static_cast<uint32_t>(payload.size()));
    a.bus().Write(base + RadioRegs::kTxLen, static_cast<uint32_t>(payload.size()), 4,
                  Privilege::kPrivileged);
    uint64_t air = CycleCosts::kRadioCyclesPerByte * (payload.size() + 8) + 10 +
                   medium.link_faults().reorder_delay + medium.link_faults().duplicate_delay;
    a.Tick(air);
    b.Tick(air);
  }

  // Consumes the received frame (clears kRxDone) so the next one is accepted.
  void Consume() {
    uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
    b.bus().Write(base + RadioRegs::kIntClr,
                  RadioRegs::Status::kRxDone.Set().value |
                      RadioRegs::Status::kRxOverrun.Set().value,
                  4, Privilege::kPrivileged);
  }

  Mcu a, b;
  Radio radio_a{&a.clock(), &a.bus(), InterruptLine(&a.irq(), 8)};
  Radio radio_b{&b.clock(), &b.bus(), InterruptLine(&b.irq(), 8)};
  RadioMedium medium;
};

TEST(RadioFaults, DropAllLosesEveryFrameAndCountsIt) {
  FaultBench bench;
  LinkFaultConfig faults;
  faults.seed = 1;
  faults.drop_permille = 1000;
  bench.medium.SetLinkFaults(faults);

  for (int i = 0; i < 5; ++i) {
    bench.Send({1, 2, 3});
  }
  EXPECT_EQ(bench.radio_b.packets_received(), 0u);
  EXPECT_EQ(bench.radio_b.fault_counters().dropped, 5u);
  EXPECT_EQ(bench.radio_a.packets_sent(), 5u);  // the sender never knows
}

TEST(RadioFaults, CorruptFlipsExactlyOneSeededBit) {
  FaultBench bench;
  LinkFaultConfig faults;
  faults.seed = 2;
  faults.corrupt_permille = 1000;
  bench.medium.SetLinkFaults(faults);

  std::vector<uint8_t> sent = {0x55, 0xAA, 0x0F, 0xF0, 0x00};
  bench.Send(sent);
  ASSERT_EQ(bench.radio_b.packets_received(), 1u);
  uint8_t got[5];
  bench.b.bus().ReadBlock(MemoryMap::kRamBase, got, 5);
  int bits_flipped = 0;
  for (size_t i = 0; i < sent.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(got[i] ^ sent[i]);
    while (diff != 0) {
      bits_flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_flipped, 1);
  EXPECT_EQ(bench.radio_b.fault_counters().corrupted, 1u);
  ASSERT_EQ(bench.radio_b.delivery_log().size(), 1u);
  EXPECT_EQ(bench.radio_b.delivery_log()[0].fault_bits, kFaultCorrupted);
}

TEST(RadioFaults, DuplicateDeliversASecondMarkedCopy) {
  FaultBench bench;
  LinkFaultConfig faults;
  faults.seed = 3;
  faults.duplicate_permille = 1000;
  bench.medium.SetLinkFaults(faults);

  uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
  bench.a.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>("dup"), 3);
  bench.a.bus().Write(base + RadioRegs::kTxLen, 3, 4, Privilege::kPrivileged);
  // Original arrives after the air time; consume it so the duplicate (one
  // duplicate_delay later) lands in the freed buffer instead of overrunning.
  uint64_t air = CycleCosts::kRadioCyclesPerByte * (3 + 8) + 10;
  bench.a.Tick(air);
  bench.b.Tick(air);
  ASSERT_EQ(bench.radio_b.packets_received(), 1u);
  bench.Consume();
  bench.a.Tick(faults.duplicate_delay);
  bench.b.Tick(faults.duplicate_delay);

  EXPECT_EQ(bench.radio_b.packets_received(), 2u);
  EXPECT_EQ(bench.radio_b.fault_counters().duplicated, 1u);
  ASSERT_EQ(bench.radio_b.delivery_log().size(), 2u);
  EXPECT_EQ(bench.radio_b.delivery_log()[0].fault_bits, 0u);
  EXPECT_EQ(bench.radio_b.delivery_log()[1].fault_bits, kFaultDuplicated);
  EXPECT_EQ(bench.radio_b.delivery_log()[0].payload_sum,
            bench.radio_b.delivery_log()[1].payload_sum);
}

TEST(RadioFaults, ReorderDelaysArrivalPastLaterTraffic) {
  FaultBench bench;
  LinkFaultConfig faults;
  faults.seed = 4;
  faults.reorder_permille = 1000;
  bench.medium.SetLinkFaults(faults);

  uint32_t base = MemoryMap::SlotBase(MemoryMap::kRadio);
  bench.a.bus().WriteBlock(MemoryMap::kRamBase, reinterpret_cast<const uint8_t*>("late"), 4);
  bench.a.bus().Write(base + RadioRegs::kTxLen, 4, 4, Privilege::kPrivileged);
  uint64_t air = CycleCosts::kRadioCyclesPerByte * (4 + 8) + 10;
  bench.a.Tick(air);
  bench.b.Tick(air);
  // On-time arrival cycle: nothing yet — the frame was pushed back.
  EXPECT_EQ(bench.radio_b.packets_received(), 0u);
  bench.a.Tick(faults.reorder_delay);
  bench.b.Tick(faults.reorder_delay);
  EXPECT_EQ(bench.radio_b.packets_received(), 1u);
  EXPECT_EQ(bench.radio_b.fault_counters().reordered, 1u);
  ASSERT_EQ(bench.radio_b.delivery_log().size(), 1u);
  EXPECT_EQ(bench.radio_b.delivery_log()[0].fault_bits, kFaultReordered);
}

TEST(RadioFaults, SameSeedReproducesIdenticalFaultPattern) {
  // Two independent benches under the same seed and rates must drop the exact
  // same frames — the foundation of the fleet determinism guarantee. A third
  // bench under another seed shows the pattern is seed-driven, not positional.
  auto run = [](uint64_t seed) {
    FaultBench bench;
    LinkFaultConfig faults;
    faults.seed = seed;
    faults.drop_permille = 300;
    bench.medium.SetLinkFaults(faults);
    std::string pattern;
    for (int i = 0; i < 40; ++i) {
      uint64_t before = bench.radio_b.packets_received();
      bench.Send({static_cast<uint8_t>(i)});
      pattern += bench.radio_b.packets_received() > before ? 'R' : '.';
      bench.Consume();
    }
    // Statistical sanity: with p=0.3 over 40 frames, both outcomes occur.
    EXPECT_GT(bench.radio_b.packets_received(), 0u);
    EXPECT_GT(bench.radio_b.fault_counters().dropped, 0u);
    return pattern;
  };
  std::string first = run(0xFEED);
  std::string second = run(0xFEED);
  std::string other = run(0xFACE);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

// ---- SPI -----------------------------------------------------------------------------

class EchoSlave : public SpiSlaveModel {
 public:
  uint8_t Exchange(uint8_t mosi) override { return static_cast<uint8_t>(mosi ^ 0xFF); }
  void CsAsserted() override { ++selections; }
  int selections = 0;
};

TEST(SpiHw, FullDuplexTransferWithAttachedSlave) {
  Mcu mcu;
  Spi spi(&mcu.clock(), &mcu.bus(), InterruptLine(&mcu.irq(), 3), /*active-low only*/ 0b01);
  mcu.bus().AttachDevice(MemoryMap::kSpi0, &spi);
  mcu.irq().Enable(3);
  EchoSlave slave;
  spi.AttachSlave(0, &slave);

  uint8_t tx[4] = {0x00, 0x0F, 0xF0, 0xFF};
  mcu.bus().WriteBlock(MemoryMap::kRamBase, tx, 4);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kSpi0);
  mcu.bus().Write(base + SpiRegs::kCtrl, SpiRegs::Ctrl::kEnable.Set().value, 4,
                  Privilege::kPrivileged);
  mcu.bus().Write(base + SpiRegs::kDmaTxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + SpiRegs::kDmaRxAddr, MemoryMap::kRamBase + 16, 4,
                  Privilege::kPrivileged);
  mcu.bus().Write(base + SpiRegs::kLen, 4, 4, Privilege::kPrivileged);
  mcu.Tick(4 * CycleCosts::kSpiCyclesPerByte);

  uint8_t rx[4];
  mcu.bus().ReadBlock(MemoryMap::kRamBase + 16, rx, 4);
  EXPECT_EQ(rx[0], 0xFF);
  EXPECT_EQ(rx[3], 0x00);
  EXPECT_EQ(slave.selections, 1);
  EXPECT_TRUE(mcu.irq().IsPending(3));
}

TEST(SpiHw, UnsupportedPolarityIsLatentMisconfiguration) {
  Mcu mcu;
  Spi spi(&mcu.clock(), &mcu.bus(), InterruptLine(&mcu.irq(), 3), /*active-low only*/ 0b01);
  mcu.bus().AttachDevice(MemoryMap::kSpi0, &spi);
  EchoSlave slave;
  spi.AttachSlave(0, &slave);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kSpi0);
  // Request active-high CS on an active-low-only controller: the bug class Fig 3's
  // compile-time checks eliminate.
  mcu.bus().Write(base + SpiRegs::kCtrl,
                  (SpiRegs::Ctrl::kEnable.Set() + SpiRegs::Ctrl::kCsPolarity.Val(1)).value, 4,
                  Privilege::kPrivileged);
  EXPECT_TRUE(spi.polarity_config_error());

  uint8_t tx[2] = {0xAA, 0xBB};
  mcu.bus().WriteBlock(MemoryMap::kRamBase, tx, 2);
  mcu.bus().Write(base + SpiRegs::kDmaTxAddr, MemoryMap::kRamBase, 4, Privilege::kPrivileged);
  mcu.bus().Write(base + SpiRegs::kDmaRxAddr, MemoryMap::kRamBase + 8, 4,
                  Privilege::kPrivileged);
  mcu.bus().Write(base + SpiRegs::kLen, 2, 4, Privilege::kPrivileged);
  mcu.Tick(2 * CycleCosts::kSpiCyclesPerByte);
  // Device never selected: reads float high and the slave saw nothing.
  uint8_t rx[2];
  mcu.bus().ReadBlock(MemoryMap::kRamBase + 8, rx, 2);
  EXPECT_EQ(rx[0], 0xFF);
  EXPECT_EQ(slave.selections, 0);
}

// ---- Temperature sensor ---------------------------------------------------------------

TEST(TempSensorHw, ConversionTakesTimeAndTracksAmbient) {
  Mcu mcu;
  TempSensor sensor(&mcu.clock(), InterruptLine(&mcu.irq(), 9));
  mcu.bus().AttachDevice(MemoryMap::kTempSensor, &sensor);
  mcu.irq().Enable(9);
  sensor.SetAmbient(2500);
  uint32_t base = MemoryMap::SlotBase(MemoryMap::kTempSensor);

  mcu.bus().Write(base + TempRegs::kCtrl, 1, 4, Privilege::kPrivileged);
  EXPECT_FALSE(mcu.irq().IsPending(9));
  mcu.Tick(CycleCosts::kTempConversionCycles);
  EXPECT_TRUE(mcu.irq().IsPending(9));
  int32_t value =
      static_cast<int32_t>(*mcu.bus().Read(base + TempRegs::kValue, 4, Privilege::kPrivileged));
  EXPECT_NEAR(value, 2500, 25);
}

}  // namespace
}  // namespace tock
