// Timer-virtualization tests (E12): §5.4 singles out timer virtualization as a
// subtle-logic-bug magnet. These tests pin the invariants deterministically, then
// fuzz them with randomized schedules (parameterized over seeds).
#include <gtest/gtest.h>

#include <vector>

#include "capsule/virtual_alarm.h"
#include "chip/chip_alarm.h"
#include "hw/mcu.h"
#include "hw/memory_map.h"
#include "hw/timer.h"

namespace tock {
namespace {

// Records every firing with its timestamp.
class RecordingClient : public hil::AlarmClient {
 public:
  explicit RecordingClient(Mcu* mcu) : mcu_(mcu) {}
  void AlarmFired() override { firings.push_back(mcu_->CyclesNow()); }
  Mcu* mcu_;
  std::vector<uint64_t> firings;
};

class VirtualAlarmTest : public ::testing::Test {
 protected:
  static constexpr unsigned kIrq = MemoryMap::kAlarm;

  VirtualAlarmTest()
      : alarm_hw_(&mcu_.clock(), InterruptLine(&mcu_.irq(), kIrq)),
        chip_alarm_(&mcu_, MemoryMap::SlotBase(MemoryMap::kAlarm)),
        mux_(&chip_alarm_) {
    mcu_.bus().AttachDevice(MemoryMap::kAlarm, &alarm_hw_);
    mcu_.irq().Enable(kIrq);
  }

  // Advances time, dispatching the alarm bottom half like the kernel loop would.
  void RunFor(uint64_t cycles) {
    uint64_t target = mcu_.CyclesNow() + cycles;
    while (mcu_.CyclesNow() < target) {
      uint64_t next = mcu_.clock().NextEventAt();
      uint64_t step = next == UINT64_MAX || next > target ? target - mcu_.CyclesNow()
                                                          : next - mcu_.CyclesNow();
      mcu_.Tick(step == 0 ? 1 : step);
      while (mcu_.irq().IsPending(kIrq)) {
        mcu_.irq().Complete(kIrq);
        chip_alarm_.HandleInterrupt(kIrq);
      }
    }
  }

  Mcu mcu_;
  AlarmTimer alarm_hw_;
  ChipAlarm chip_alarm_;
  VirtualAlarmMux mux_;
};

TEST_F(VirtualAlarmTest, SingleClientFiresOnceAtDeadline) {
  VirtualAlarm valarm(&mux_);
  mux_.AddClient(&valarm);
  RecordingClient client(&mcu_);
  valarm.SetClient(&client);

  uint32_t now = valarm.Now();
  valarm.SetAlarm(now, 1000);
  EXPECT_TRUE(valarm.IsArmed());
  RunFor(5000);
  ASSERT_EQ(client.firings.size(), 1u);
  EXPECT_GE(client.firings[0], now + 1000);
  EXPECT_LE(client.firings[0], now + 1100);  // small hardware slack allowed
  EXPECT_FALSE(valarm.IsArmed());
}

TEST_F(VirtualAlarmTest, MultipleClientsFireInDeadlineOrder) {
  VirtualAlarm a(&mux_), b(&mux_), c(&mux_);
  mux_.AddClient(&a);
  mux_.AddClient(&b);
  mux_.AddClient(&c);
  RecordingClient ca(&mcu_), cb(&mcu_), cc(&mcu_);
  a.SetClient(&ca);
  b.SetClient(&cb);
  c.SetClient(&cc);

  uint32_t now = mux_.Now();
  a.SetAlarm(now, 3000);
  b.SetAlarm(now, 1000);
  c.SetAlarm(now, 2000);
  RunFor(10'000);
  ASSERT_EQ(ca.firings.size(), 1u);
  ASSERT_EQ(cb.firings.size(), 1u);
  ASSERT_EQ(cc.firings.size(), 1u);
  EXPECT_LT(cb.firings[0], cc.firings[0]);
  EXPECT_LT(cc.firings[0], ca.firings[0]);
}

TEST_F(VirtualAlarmTest, DisarmPreventsFiring) {
  VirtualAlarm a(&mux_), b(&mux_);
  mux_.AddClient(&a);
  mux_.AddClient(&b);
  RecordingClient ca(&mcu_), cb(&mcu_);
  a.SetClient(&ca);
  b.SetClient(&cb);

  uint32_t now = mux_.Now();
  a.SetAlarm(now, 1000);
  b.SetAlarm(now, 2000);
  a.Disarm();
  RunFor(5000);
  EXPECT_TRUE(ca.firings.empty());
  EXPECT_EQ(cb.firings.size(), 1u);
}

TEST_F(VirtualAlarmTest, AlreadyExpiredAlarmFiresPromptly) {
  VirtualAlarm a(&mux_);
  mux_.AddClient(&a);
  RecordingClient ca(&mcu_);
  a.SetClient(&ca);

  mcu_.Tick(10'000);
  uint32_t now = mux_.Now();
  // Reference far in the past, dt tiny: the window already passed. Must fire
  // almost immediately, not a 2^32-cycle wrap later.
  a.SetAlarm(now - 5000, 10);
  RunFor(200);
  ASSERT_EQ(ca.firings.size(), 1u);
}

TEST_F(VirtualAlarmTest, RearmFromInsideCallbackWorks) {
  // Periodic client: each firing re-arms itself — the reentrancy case the mux's
  // firing-batch logic exists for.
  class Periodic : public hil::AlarmClient {
   public:
    Periodic(VirtualAlarm* alarm, uint32_t period) : alarm_(alarm), period_(period) {}
    void AlarmFired() override {
      ++count;
      alarm_->SetAlarm(alarm_->Now(), period_);
    }
    VirtualAlarm* alarm_;
    uint32_t period_;
    int count = 0;
  };

  VirtualAlarm a(&mux_);
  mux_.AddClient(&a);
  Periodic periodic(&a, 1000);
  a.SetClient(&periodic);
  a.SetAlarm(a.Now(), 1000);
  RunFor(10'500);
  EXPECT_GE(periodic.count, 9);
  EXPECT_LE(periodic.count, 11);
}

TEST_F(VirtualAlarmTest, SimultaneousDeadlinesAllFireInOneBatch) {
  VirtualAlarm a(&mux_), b(&mux_);
  mux_.AddClient(&a);
  mux_.AddClient(&b);
  RecordingClient ca(&mcu_), cb(&mcu_);
  a.SetClient(&ca);
  b.SetClient(&cb);
  uint32_t now = mux_.Now();
  a.SetAlarm(now, 1000);
  b.SetAlarm(now, 1000);
  RunFor(3000);
  EXPECT_EQ(ca.firings.size(), 1u);
  EXPECT_EQ(cb.firings.size(), 1u);
}

// A client whose callback unregisters its own alarm from the mux — the iteration-
// invalidation case: the old Phase-2 loop held an iterator across the callback, and
// RemoveClient rewrites the intrusive links that iterator stands on.
class SelfRemovingClient : public hil::AlarmClient {
 public:
  SelfRemovingClient(VirtualAlarmMux* mux, VirtualAlarm* alarm) : mux_(mux), alarm_(alarm) {}
  void AlarmFired() override {
    ++count;
    mux_->RemoveClient(alarm_);
  }
  VirtualAlarmMux* mux_;
  VirtualAlarm* alarm_;
  int count = 0;
};

TEST_F(VirtualAlarmTest, CallbackMayUnregisterItselfMidBatch) {
  VirtualAlarm a(&mux_), b(&mux_), c(&mux_);
  mux_.AddClient(&a);
  mux_.AddClient(&b);
  mux_.AddClient(&c);
  SelfRemovingClient ca(&mux_, &a);
  RecordingClient cb(&mcu_), cc(&mcu_);
  a.SetClient(&ca);
  b.SetClient(&cb);
  c.SetClient(&cc);

  // All three expire in the same batch; a's callback unlinks a while the batch is
  // still being delivered. b and c must still fire exactly once.
  uint32_t now = mux_.Now();
  a.SetAlarm(now, 1000);
  b.SetAlarm(now, 1000);
  c.SetAlarm(now, 1000);
  RunFor(3000);
  EXPECT_EQ(ca.count, 1);
  EXPECT_EQ(cb.firings.size(), 1u);
  EXPECT_EQ(cc.firings.size(), 1u);

  // a is gone: re-running time must not fire it again, and the others stay quiet too.
  RunFor(3000);
  EXPECT_EQ(ca.count, 1);
  EXPECT_EQ(cb.firings.size(), 1u);
  EXPECT_EQ(cc.firings.size(), 1u);
}

TEST_F(VirtualAlarmTest, CallbackMayRemoveAnotherPendingClientMidBatch) {
  // b's callback removes c — which is also expired and still pending in the same
  // batch. c's callback must NOT run after its removal.
  VirtualAlarm b(&mux_), c(&mux_);
  RecordingClient cc(&mcu_);

  class RemoveOtherClient : public hil::AlarmClient {
   public:
    RemoveOtherClient(VirtualAlarmMux* mux, VirtualAlarm* victim) : mux_(mux), victim_(victim) {}
    void AlarmFired() override {
      ++count;
      mux_->RemoveClient(victim_);
    }
    VirtualAlarmMux* mux_;
    VirtualAlarm* victim_;
    int count = 0;
  };
  RemoveOtherClient cb(&mux_, &c);

  // AddClient pushes to the head, so insert c first: the firing scan (head-first)
  // reaches b before c and the removal races against c's pending delivery.
  mux_.AddClient(&c);
  mux_.AddClient(&b);
  b.SetClient(&cb);
  c.SetClient(&cc);
  uint32_t now = mux_.Now();
  b.SetAlarm(now, 1000);
  c.SetAlarm(now, 1000);
  RunFor(3000);
  EXPECT_EQ(cb.count, 1);
  EXPECT_TRUE(cc.firings.empty());
}

TEST_F(VirtualAlarmTest, CallbackMayAddAndArmNewClientMidBatch) {
  VirtualAlarm a(&mux_), late(&mux_);
  RecordingClient clate(&mcu_);
  late.SetClient(&clate);

  class AddOtherClient : public hil::AlarmClient {
   public:
    AddOtherClient(VirtualAlarmMux* mux, VirtualAlarm* newcomer) : mux_(mux), newcomer_(newcomer) {}
    void AlarmFired() override {
      ++count;
      mux_->AddClient(newcomer_);
      newcomer_->SetAlarm(newcomer_->Now(), 500);
    }
    VirtualAlarmMux* mux_;
    VirtualAlarm* newcomer_;
    int count = 0;
  };
  AddOtherClient ca(&mux_, &late);

  mux_.AddClient(&a);
  a.SetClient(&ca);
  a.SetAlarm(a.Now(), 1000);
  RunFor(5000);
  EXPECT_EQ(ca.count, 1);
  ASSERT_EQ(clate.firings.size(), 1u);
}

TEST_F(VirtualAlarmTest, HardwareAlarmDisarmedWhenNoClientArmed) {
  VirtualAlarm a(&mux_);
  mux_.AddClient(&a);
  RecordingClient ca(&mcu_);
  a.SetClient(&ca);
  a.SetAlarm(a.Now(), 500);
  RunFor(1000);
  EXPECT_EQ(ca.firings.size(), 1u);
  EXPECT_FALSE(chip_alarm_.IsArmed());
}

// ---- Randomized property sweep --------------------------------------------------------

struct FuzzParams {
  uint32_t seed;
  unsigned num_alarms;
};

class VirtualAlarmFuzz : public VirtualAlarmTest,
                         public ::testing::WithParamInterface<FuzzParams> {};

TEST_P(VirtualAlarmFuzz, EveryArmedAlarmFiresExactlyOnceAndNeverEarly) {
  const FuzzParams params = GetParam();
  uint32_t state = params.seed * 2654435761u + 12345;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  };

  std::vector<std::unique_ptr<VirtualAlarm>> alarms;
  std::vector<std::unique_ptr<RecordingClient>> clients;
  std::vector<uint64_t> deadlines(params.num_alarms, 0);
  std::vector<bool> armed(params.num_alarms, false);

  for (unsigned i = 0; i < params.num_alarms; ++i) {
    alarms.push_back(std::make_unique<VirtualAlarm>(&mux_));
    mux_.AddClient(alarms.back().get());
    clients.push_back(std::make_unique<RecordingClient>(&mcu_));
    alarms.back()->SetClient(clients.back().get());
  }

  // Random interleaving of set, cancel, and time advance.
  for (int op = 0; op < 200; ++op) {
    unsigned idx = next() % params.num_alarms;
    switch (next() % 4) {
      case 0:
      case 1: {  // set
        uint32_t dt = 50 + next() % 5000;
        uint32_t now = mux_.Now();
        // Deadline recorded at the sampled reference; the mux may fire late (MMIO
        // programming latency) but never before reference + dt.
        deadlines[idx] = mcu_.CyclesNow() + dt;
        alarms[idx]->SetAlarm(now, dt);
        armed[idx] = true;
        clients[idx]->firings.clear();
        break;
      }
      case 2: {  // cancel
        alarms[idx]->Disarm();
        armed[idx] = false;
        clients[idx]->firings.clear();
        break;
      }
      case 3: {  // advance a random amount, tracking which alarms must have fired
        RunFor(next() % 2000);
        for (unsigned i = 0; i < params.num_alarms; ++i) {
          if (armed[i] && mcu_.CyclesNow() > deadlines[i] + 100) {
            ASSERT_EQ(clients[i]->firings.size(), 1u)
                << "alarm " << i << " deadline " << deadlines[i] << " now "
                << mcu_.CyclesNow();
            ASSERT_GE(clients[i]->firings[0], deadlines[i]) << "fired early";
            armed[i] = false;
            clients[i]->firings.clear();
          }
        }
        // Nothing may fire before its deadline — ever.
        for (unsigned i = 0; i < params.num_alarms; ++i) {
          for (uint64_t t : clients[i]->firings) {
            ASSERT_GE(t, deadlines[i]) << "alarm " << i << " fired early at " << t;
          }
        }
        break;
      }
    }
  }

  // Drain: everything still armed fires eventually, exactly once.
  RunFor(10'000);
  for (unsigned i = 0; i < params.num_alarms; ++i) {
    if (armed[i]) {
      EXPECT_EQ(clients[i]->firings.size(), 1u) << "alarm " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, VirtualAlarmFuzz,
                         ::testing::Values(FuzzParams{1, 1}, FuzzParams{2, 2},
                                           FuzzParams{3, 4}, FuzzParams{4, 8},
                                           FuzzParams{5, 16}, FuzzParams{6, 32},
                                           FuzzParams{7, 3}, FuzzParams{8, 5},
                                           FuzzParams{9, 7}, FuzzParams{10, 64}));

// ---- Earliest-deadline cache (host-side rearm cost) --------------------------------------

// The mux caches the argmin of the armed set so rearms triggered by non-earliest
// clients don't rescan every client. The counters are host-side instrumentation;
// the firing behavior (asserted throughout this file) is identical on both paths.
TEST_F(VirtualAlarmTest, RearmReusesCachedMinimumForNonEarliestChanges) {
  VirtualAlarm a(&mux_);
  VirtualAlarm b(&mux_);
  mux_.AddClient(&a);
  mux_.AddClient(&b);
  uint32_t now = static_cast<uint32_t>(mcu_.CyclesNow());

  a.SetAlarm(now, 500);  // first arm: cache cold, full scan
  EXPECT_EQ(mux_.rearm_scans(), 1u);
  EXPECT_EQ(mux_.rearm_fast(), 0u);

  b.SetAlarm(now, 2000);  // later than a: cached minimum still valid
  b.SetAlarm(now, 1000);  // re-arm of a non-earliest client: still no scan
  b.Disarm();             // disarming a non-earliest client: still no scan
  EXPECT_EQ(mux_.rearm_scans(), 1u);
  EXPECT_EQ(mux_.rearm_fast(), 3u);

  b.SetAlarm(now, 50);  // undercuts a: the cache adopts b without a scan
  EXPECT_EQ(mux_.rearm_scans(), 1u);
  EXPECT_EQ(mux_.rearm_fast(), 4u);

  // ...and the adopted minimum is the one that fires first. (The rearms above
  // tick MMIO cycles, so leave generous room below a's 500-cycle deadline.)
  RecordingClient rc(&mcu_);
  a.SetClient(&rc);
  RecordingClient rb_client(&mcu_);
  b.SetClient(&rb_client);
  RunFor(200);
  EXPECT_EQ(rb_client.firings.size(), 1u);
  EXPECT_TRUE(rc.firings.empty());
}

TEST_F(VirtualAlarmTest, DisarmingTheEarliestForcesARescan) {
  VirtualAlarm a(&mux_);
  VirtualAlarm b(&mux_);
  mux_.AddClient(&a);
  mux_.AddClient(&b);
  uint32_t now = static_cast<uint32_t>(mcu_.CyclesNow());

  a.SetAlarm(now, 100);
  b.SetAlarm(now, 1000);
  uint64_t scans = mux_.rearm_scans();

  a.Disarm();  // the minimum left: the runner-up is unknown without a scan
  EXPECT_EQ(mux_.rearm_scans(), scans + 1);

  // b (the survivor) still fires at its own deadline.
  RecordingClient rb_client(&mcu_);
  b.SetClient(&rb_client);
  RunFor(1100);
  EXPECT_EQ(rb_client.firings.size(), 1u);
}

TEST_F(VirtualAlarmTest, RearmingTheEarliestItselfForcesARescan) {
  VirtualAlarm a(&mux_);
  VirtualAlarm b(&mux_);
  mux_.AddClient(&a);
  mux_.AddClient(&b);
  uint32_t now = static_cast<uint32_t>(mcu_.CyclesNow());

  a.SetAlarm(now, 100);
  b.SetAlarm(now, 300);
  uint64_t scans = mux_.rearm_scans();

  a.SetAlarm(now, 600);  // the minimum moved later: b must be rediscovered
  EXPECT_EQ(mux_.rearm_scans(), scans + 1);

  RecordingClient ra(&mcu_);
  RecordingClient rb_client(&mcu_);
  a.SetClient(&ra);
  b.SetClient(&rb_client);
  RunFor(400);
  EXPECT_EQ(rb_client.firings.size(), 1u);  // b fires first at +300
  EXPECT_TRUE(ra.firings.empty());
  RunFor(300);
  EXPECT_EQ(ra.firings.size(), 1u);  // a fires at +600
}

}  // namespace
}  // namespace tock
