// VM tests: assembler encodings, instruction semantics, syscall trap, MPU-enforced
// isolation of the executing process.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "hw/mcu.h"
#include "hw/memory_map.h"
#include "vm/assembler.h"
#include "vm/cpu.h"

namespace tock {
namespace {

constexpr uint32_t kCodeBase = 0x1000;          // in flash
constexpr uint32_t kRam = MemoryMap::kRamBase;  // RAM window for the "process"

class VmTest : public ::testing::Test {
 protected:
  // Assembles and installs `source` at kCodeBase, opens MPU windows for code (RX)
  // and the first 4 KiB of RAM (RW), and points the context at the entry.
  void Load(const std::string& source) {
    AssembledImage image;
    ASSERT_TRUE(assembler_.Assemble(source, kCodeBase, &image)) << assembler_.error();
    ASSERT_TRUE(mcu_.bus().ProgramFlash(kCodeBase, image.bytes.data(),
                                        static_cast<uint32_t>(image.bytes.size())));
    symbols_ = image.symbols;
    mcu_.mpu().ConfigureRegion(
        0, {kCodeBase, static_cast<uint32_t>(image.bytes.size()), true, false, true, true});
    mcu_.mpu().ConfigureRegion(1, {kRam, 4096, true, true, false, true});
    ctx_ = CpuContext{};
    ctx_.pc = kCodeBase;
    ctx_.x[Reg::kSp] = kRam + 4096;
  }

  // Steps until ecall/ebreak/fault or `max` instructions.
  StepResult Run(int max = 10000) {
    Cpu cpu(&mcu_.bus());
    return Run(&cpu, max);
  }

  // Same, on a caller-owned Cpu (so tests can attach a DecodeCache and keep state
  // across several runs).
  StepResult Run(Cpu* cpu, int max = 10000) {
    for (int i = 0; i < max; ++i) {
      StepResult r = cpu->Step(ctx_);
      if (r != StepResult::kOk) {
        last_fault_ = cpu->fault();
        return r;
      }
    }
    return StepResult::kOk;
  }

  Mcu mcu_;
  Assembler assembler_;
  CpuContext ctx_;
  std::map<std::string, uint32_t> symbols_;
  VmFault last_fault_;
};

// ---- Assembler -------------------------------------------------------------------------

TEST_F(VmTest, AssemblerEmitsCanonicalEncodings) {
  AssembledImage image;
  ASSERT_TRUE(assembler_.Assemble("addi a0, zero, 42\necall\n", 0, &image));
  ASSERT_EQ(image.bytes.size(), 8u);
  uint32_t word0, word1;
  std::memcpy(&word0, image.bytes.data(), 4);
  std::memcpy(&word1, image.bytes.data() + 4, 4);
  EXPECT_EQ(word0, 0x02A00513u);  // addi a0, x0, 42
  EXPECT_EQ(word1, 0x00000073u);  // ecall
}

TEST_F(VmTest, AssemblerRejectsUnknownMnemonic) {
  AssembledImage image;
  EXPECT_FALSE(assembler_.Assemble("frobnicate a0, a1\n", 0, &image));
  EXPECT_NE(assembler_.error().find("unknown mnemonic"), std::string::npos);
}

TEST_F(VmTest, AssemblerRejectsDuplicateLabel) {
  AssembledImage image;
  EXPECT_FALSE(assembler_.Assemble("x:\nnop\nx:\nnop\n", 0, &image));
}

TEST_F(VmTest, AssemblerRejectsOutOfRangeImmediate) {
  AssembledImage image;
  EXPECT_FALSE(assembler_.Assemble("addi a0, a0, 5000\n", 0, &image));
}

TEST_F(VmTest, AssemblerResolvesForwardAndBackwardLabels) {
  AssembledImage image;
  ASSERT_TRUE(assembler_.Assemble(R"(
start:
    j forward
back:
    nop
forward:
    j back
)", 0x100, &image)) << assembler_.error();
  EXPECT_EQ(image.symbols.at("start"), 0x100u);
  EXPECT_EQ(image.symbols.at("back"), 0x104u);
  EXPECT_EQ(image.symbols.at("forward"), 0x108u);
}

TEST_F(VmTest, AssemblerDirectives) {
  AssembledImage image;
  ASSERT_TRUE(assembler_.Assemble(R"(
.equ MAGIC, 0x1234
data:
    .word MAGIC, 7
    .byte 1, 2
    .align 4
    .asciz "hi"
    .space 3
)", 0, &image)) << assembler_.error();
  uint32_t w0;
  std::memcpy(&w0, image.bytes.data(), 4);
  EXPECT_EQ(w0, 0x1234u);
  EXPECT_EQ(image.bytes[8], 1);
  EXPECT_EQ(image.bytes[9], 2);
  EXPECT_EQ(image.bytes[12], 'h');  // aligned to 4
  EXPECT_EQ(image.bytes[13], 'i');
  EXPECT_EQ(image.bytes[14], 0);
  EXPECT_EQ(image.bytes.size(), 18u);
}

// ---- ALU semantics (parameterized) --------------------------------------------------------

struct AluCase {
  const char* op;
  uint32_t a;
  uint32_t b;
  uint32_t expected;
};

class AluTest : public VmTest, public ::testing::WithParamInterface<AluCase> {};

TEST_P(AluTest, RegisterRegisterOps) {
  const AluCase& c = GetParam();
  std::string source = std::string("_start:\n    ") + c.op +
                       " a2, a0, a1\n    ecall\n";
  Load(source);
  ctx_.x[Reg::kA0] = c.a;
  ctx_.x[Reg::kA1] = c.b;
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA2], c.expected) << c.op;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        AluCase{"add", 3, 4, 7}, AluCase{"add", 0xFFFFFFFF, 1, 0},
        AluCase{"sub", 3, 4, 0xFFFFFFFF}, AluCase{"and", 0xF0F0, 0xFF00, 0xF000},
        AluCase{"or", 0xF0F0, 0x0F0F, 0xFFFF}, AluCase{"xor", 0xFF, 0x0F, 0xF0},
        AluCase{"sll", 1, 5, 32}, AluCase{"sll", 1, 37, 32},  // shift amount mod 32
        AluCase{"srl", 0x80000000, 4, 0x08000000},
        AluCase{"sra", 0x80000000, 4, 0xF8000000},
        AluCase{"slt", 0xFFFFFFFF, 0, 1},   // -1 < 0 signed
        AluCase{"sltu", 0xFFFFFFFF, 0, 0},  // big unsigned
        AluCase{"mul", 7, 6, 42}, AluCase{"mul", 0x10000, 0x10000, 0},
        AluCase{"mulh", 0xFFFFFFFF, 0xFFFFFFFF, 0},        // (-1)*(-1) high = 0
        AluCase{"mulhu", 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE},
        AluCase{"div", 42, 7, 6}, AluCase{"div", 7, 0, 0xFFFFFFFF},  // div by zero
        AluCase{"div", 0x80000000, 0xFFFFFFFF, 0x80000000},          // overflow case
        AluCase{"divu", 42, 0, 0xFFFFFFFF}, AluCase{"rem", 43, 7, 1},
        AluCase{"rem", 7, 0, 7}, AluCase{"remu", 0xFFFFFFFF, 10, 5}));

TEST_F(VmTest, X0IsHardwiredToZero) {
  Load("_start:\n    addi zero, zero, 5\n    mv a0, zero\n    ecall\n");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[0], 0u);
  EXPECT_EQ(ctx_.x[Reg::kA0], 0u);
}

TEST_F(VmTest, LuiAddiComposeLargeConstants) {
  Load("_start:\n    li a0, 0xDEADBEEF\n    li a1, -1\n    li a2, 2047\n    ecall\n");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 0xDEADBEEFu);
  EXPECT_EQ(ctx_.x[Reg::kA1], 0xFFFFFFFFu);
  EXPECT_EQ(ctx_.x[Reg::kA2], 2047u);
}

TEST_F(VmTest, BranchesCompareCorrectly) {
  Load(R"(
_start:
    li a0, 0
    li t0, -1
    li t1, 1
    blt t0, t1, signed_ok
    j fail
signed_ok:
    bltu t1, t0, unsigned_ok   # 1 < 0xFFFFFFFF unsigned
    j fail
unsigned_ok:
    li a0, 1
    ecall
fail:
    li a0, 99
    ecall
)");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 1u);
}

TEST_F(VmTest, LoadsAndStoresWithSignExtension) {
  Load(R"(
_start:
    li t0, 0x20000000
    li t1, 0xFFFF8280
    sw t1, 0(t0)
    lb a0, 0(t0)       # 0x80 sign-extended
    lbu a1, 0(t0)      # 0x80 zero-extended
    lh a2, 0(t0)       # 0x8280 sign-extended
    lhu a3, 0(t0)
    ecall
)");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 0xFFFFFF80u);
  EXPECT_EQ(ctx_.x[Reg::kA1], 0x80u);
  EXPECT_EQ(ctx_.x[Reg::kA2], 0xFFFF8280u);
  EXPECT_EQ(ctx_.x[Reg::kA3], 0x8280u);
}

TEST_F(VmTest, CallAndRetUseReturnAddress) {
  Load(R"(
_start:
    call helper
    addi a0, a0, 1
    ecall
helper:
    li a0, 10
    ret
)");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 11u);
}

TEST_F(VmTest, FunctionsUseTheStack) {
  Load(R"(
_start:
    addi sp, sp, -8
    li t0, 123
    sw t0, 4(sp)
    sw ra, 0(sp)
    lw a0, 4(sp)
    addi sp, sp, 8
    ecall
)");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 123u);
}

// ---- Trap and fault semantics -----------------------------------------------------------

TEST_F(VmTest, EcallLeavesPcAfterTrapAndArgsVisible) {
  Load("_start:\n    li a0, 1\n    li a4, 2\n    ecall\n    li a0, 7\n    ecall\n");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 1u);
  EXPECT_EQ(ctx_.x[Reg::kA4], 2u);
  // Resuming executes the instruction after the trap.
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 7u);
}

TEST_F(VmTest, EbreakIsDistinctFromEcall) {
  Load("_start:\n    ebreak\n");
  EXPECT_EQ(Run(), StepResult::kEbreak);
}

TEST_F(VmTest, StoreOutsideMpuWindowFaults) {
  Load(R"(
_start:
    li t0, 0x20001000   # just past the 4 KiB RW window
    sw t0, 0(t0)
)");
  ASSERT_EQ(Run(), StepResult::kFault);
  EXPECT_EQ(last_fault_.kind, VmFault::Kind::kBus);
  EXPECT_EQ(last_fault_.bus_fault.kind, BusFaultKind::kMpuViolation);
  EXPECT_EQ(last_fault_.detail, 0x20001000u);
}

TEST_F(VmTest, WriteToOwnCodeFaults) {
  // Code region is RX, not W: self-modification is an MPU violation.
  Load(R"(
_start:
    li t0, 0x1000
    sw t0, 0(t0)
)");
  ASSERT_EQ(Run(), StepResult::kFault);
  EXPECT_EQ(last_fault_.bus_fault.kind, BusFaultKind::kMpuViolation);
}

TEST_F(VmTest, JumpOutsideExecutableRegionFaults) {
  Load(R"(
_start:
    li t0, 0x20000000   # RAM is RW but not X
    jr t0
)");
  ASSERT_EQ(Run(), StepResult::kFault);
  EXPECT_EQ(last_fault_.bus_fault.access, AccessType::kExecute);
}

TEST_F(VmTest, MmioIsUnreachableFromUserCode) {
  Load(R"(
_start:
    li t0, 0x40000000
    lw a0, 0(t0)
)");
  ASSERT_EQ(Run(), StepResult::kFault);
  EXPECT_EQ(last_fault_.bus_fault.kind, BusFaultKind::kMpuViolation);
}

TEST_F(VmTest, IllegalInstructionFaults) {
  Load("_start:\n    .word 0xFFFFFFFF\n");
  ASSERT_EQ(Run(), StepResult::kFault);
  EXPECT_EQ(last_fault_.kind, VmFault::Kind::kIllegalInstruction);
}

TEST_F(VmTest, UpcallReturnAddressIsRecognized) {
  Load("_start:\n    li ra, 0xFFFFFFFC\n    ret\n");
  EXPECT_EQ(Run(), StepResult::kUpcallReturn);
}

TEST_F(VmTest, FibonacciComputesCorrectly) {
  Load(R"(
_start:
    li a0, 10
    li t0, 0
    li t1, 1
loop:
    beqz a0, done
    add t2, t0, t1
    mv t0, t1
    mv t1, t2
    addi a0, a0, -1
    j loop
done:
    mv a0, t0
    ecall
)");
  ASSERT_EQ(Run(), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 55u);  // fib(10)
}

// ---- Predecoded instruction cache (vm/decode.h) ------------------------------------------

// A program touching every structural corner the cache must get right: ALU ops,
// taken/untaken branches, loads/stores through the MPU, and a function call.
const char* kMixedProgram = R"(
_start:
    li s0, 0
    li s1, 7
    li t3, 0x20000000
loop:
    add s0, s0, s1
    xori s2, s0, 0x55
    sw s2, 0(t3)
    lw s3, 0(t3)
    blt s0, s1, never
    jal ra, bump
    addi s1, s1, -1
    bnez s1, loop
    mv a0, s0
    ecall
never:
    li a0, 999
    ecall
bump:
    addi s0, s0, 1
    jr ra
)";

TEST_F(VmTest, DecodeCacheMatchesUncachedExecution) {
  Load(kMixedProgram);
  Cpu uncached(&mcu_.bus());
  while (uncached.Step(ctx_) == StepResult::kOk) {
  }
  CpuContext uncached_ctx = ctx_;
  uint64_t uncached_retired = uncached.instructions_retired();

  Load(kMixedProgram);  // reset context and re-program flash
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096);
  Cpu cached(&mcu_.bus());
  cached.set_decode_cache(&cache);
  while (cached.Step(ctx_) == StepResult::kOk) {
  }

  // Architecturally invisible: same final registers, same pc, same retire count.
  EXPECT_EQ(ctx_.pc, uncached_ctx.pc);
  for (int r = 0; r < 32; ++r) {
    EXPECT_EQ(ctx_.x[r], uncached_ctx.x[r]) << "x" << r;
  }
  EXPECT_EQ(cached.instructions_retired(), uncached_retired);
  EXPECT_GT(cache.fills(), 0u);
}

TEST_F(VmTest, DecodeCacheDecodesEachWordOnceNotPerExecution) {
  // 4-instruction loop body + prologue/epilogue; 50 iterations.
  Load(R"(
_start:
    li s1, 50
loop:
    addi s0, s0, 3
    addi s1, s1, -1
    bnez s1, loop
    ecall
)");
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  while (cpu.Step(ctx_) == StepResult::kOk) {
  }
  EXPECT_EQ(ctx_.x[8], 150u);  // s0
  // 6 distinct words executed (li expands to two instructions); ~150 retired.
  // Decode-once/execute-many: the fill count tracks distinct words, not executions.
  EXPECT_EQ(cache.fills(), 6u);
  EXPECT_GT(cpu.instructions_retired(), 100u);

  // Re-running the same code fills nothing further.
  ctx_.pc = kCodeBase;
  while (cpu.Step(ctx_) == StepResult::kOk) {
  }
  EXPECT_EQ(cache.fills(), 6u);
}

TEST_F(VmTest, DecodeCacheServesStaleDecodesUntilInvalidated) {
  const char* v1 = "_start:\n    li a0, 1\n    ecall\n";
  const char* v2 = "_start:\n    li a0, 2\n    ecall\n";
  Load(v1);
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  ASSERT_EQ(Run(&cpu), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 1u);

  // Reprogram the first word without telling the cache (no observer at this
  // level): the stale decode keeps executing. This is exactly why the kernel's
  // invalidation hooks are load-bearing, not belt-and-braces.
  AssembledImage image;
  ASSERT_TRUE(assembler_.Assemble(v2, kCodeBase, &image));
  ASSERT_TRUE(mcu_.bus().ProgramFlash(kCodeBase, image.bytes.data(),
                                      static_cast<uint32_t>(image.bytes.size())));
  ctx_.pc = kCodeBase;
  ASSERT_EQ(Run(&cpu), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 1u);  // stale: the old decode of word 0

  // Invalidating the rewritten range restores freshness (li expands to two words,
  // so the range covers both — exactly what the kernel's observer does for a
  // ProgramFlash of this length).
  cache.InvalidateRange(kCodeBase, static_cast<uint32_t>(image.bytes.size()));
  EXPECT_EQ(cache.invalidations(), 1u);
  ctx_.pc = kCodeBase;
  ASSERT_EQ(Run(&cpu), StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 2u);
}

TEST_F(VmTest, DecodeCacheOutOfWindowPcFallsBackToCheckedPath) {
  Load(kMixedProgram);
  // Window deliberately elsewhere: every pc misses and takes the ordinary
  // fetch/decode path, with no fills and unchanged results.
  DecodeCache cache;
  cache.Configure(kCodeBase + 0x10000, 4096);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  ASSERT_EQ(Run(&cpu), StepResult::kEcall);
  EXPECT_EQ(cache.fills(), 0u);
  EXPECT_EQ(ctx_.x[Reg::kA0], 35u);  // 7+6+...+1 additions plus 7 bump calls
}

TEST_F(VmTest, DecodeCacheFaultsMatchUncachedFaults) {
  const char* bad = "_start:\n    nop\n    .word 0xFFFFFFFF\n";
  Load(bad);
  ASSERT_EQ(Run(), StepResult::kFault);
  VmFault uncached_fault = last_fault_;

  Load(bad);
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  ASSERT_EQ(Run(&cpu), StepResult::kFault);
  EXPECT_EQ(last_fault_.kind, uncached_fault.kind);
  EXPECT_EQ(last_fault_.detail, uncached_fault.detail);
  EXPECT_EQ(last_fault_.pc, uncached_fault.pc);
}

// ---- Superblocks + batch engine (vm/cpu.cc RunBatch, interpreter v2) --------------------

// Batch-engine analogue of Run(): drives RunBatch until it returns a trap/fault
// (kOk just means the batch budget was exhausted). Accumulates the chain-hit
// counter so tests can prove blocks actually chained, not merely built.
struct BatchRun {
  StepResult status = StepResult::kOk;
  uint64_t executed = 0;
  uint32_t chain_hits = 0;
};

BatchRun RunBatched(Cpu* cpu, CpuContext& ctx, uint32_t batch_budget = 128,
                    uint64_t max_total = 100000) {
  BatchRun out;
  while (out.executed < max_total) {
    Cpu::BatchResult b = cpu->RunBatch(ctx, batch_budget, /*superblocks=*/true);
    out.executed += b.executed;
    out.chain_hits += b.chain_hits;
    if (b.status != StepResult::kOk) {
      out.status = b.status;
      return out;
    }
  }
  return out;
}

TEST_F(VmTest, SuperblockExecutionMatchesStepEngine) {
  Load(kMixedProgram);
  Cpu stepper(&mcu_.bus());
  while (stepper.Step(ctx_) == StepResult::kOk) {
  }
  CpuContext step_ctx = ctx_;
  uint64_t step_retired = stepper.instructions_retired();

  Load(kMixedProgram);
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096, /*superblocks=*/true);
  Cpu batch(&mcu_.bus());
  batch.set_decode_cache(&cache);
  BatchRun r = RunBatched(&batch, ctx_);
  ASSERT_EQ(r.status, StepResult::kEcall);

  // Architecturally invisible: same final registers, same pc, same retire count.
  EXPECT_EQ(ctx_.pc, step_ctx.pc);
  for (int reg = 0; reg < 32; ++reg) {
    EXPECT_EQ(ctx_.x[reg], step_ctx.x[reg]) << "x" << reg;
  }
  EXPECT_EQ(batch.instructions_retired(), step_retired);
  if (DecodeCache::kSuperblocksCompiled) {
    EXPECT_GT(cache.blocks_built(), 0u);
    EXPECT_GT(r.chain_hits, 0u);  // the loop chains block-to-block across branches
  }
}

TEST_F(VmTest, SuperblockMidBlockFlashWriteInvalidatesWholeBlock) {
  if (!DecodeCache::kSuperblocksCompiled) {
    GTEST_SKIP() << "built with -DTOCK_SUPERBLOCKS=OFF";
  }
  const char* v1 =
      "_start:\n    li a0, 1\n    li a1, 2\n    li a2, 3\n"
      "    add a3, a0, a1\n    add a3, a3, a2\n    ecall\n";
  const char* v2 =
      "_start:\n    li a0, 1\n    li a1, 2\n    li a2, 7\n"
      "    add a3, a0, a1\n    add a3, a3, a2\n    ecall\n";
  Load(v1);
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096, /*superblocks=*/true);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  ASSERT_EQ(RunBatched(&cpu, ctx_).status, StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA3], 6u);
  ASSERT_GT(cache.live_blocks(), 0u);
  uint32_t live_before = cache.live_blocks();

  // Reprogram only the `li a2` pair (li expands to two words, so words 4-5) —
  // the middle of the straight-line block — and invalidate just that range, as
  // the kernel's ProgramFlash observer would. The whole enclosing block must
  // drop: a block is all-current or gone.
  AssembledImage image;
  ASSERT_TRUE(assembler_.Assemble(v2, kCodeBase, &image));
  ASSERT_TRUE(mcu_.bus().ProgramFlash(kCodeBase, image.bytes.data(),
                                      static_cast<uint32_t>(image.bytes.size())));
  EXPECT_EQ(cache.InvalidateRange(kCodeBase + 16, 8), 1u);
  EXPECT_EQ(cache.live_blocks(), live_before - 1);
  EXPECT_EQ(cache.BlockLenAt(0), 0u);

  // Fresh execution re-decodes the stale word and rebuilds the block.
  ctx_.pc = kCodeBase;
  ASSERT_EQ(RunBatched(&cpu, ctx_).status, StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA3], 10u);  // 1 + 2 + 7: the new word, not the stale decode
  EXPECT_EQ(cache.live_blocks(), live_before);
}

TEST_F(VmTest, SuperblockBranchIntoMiddleBuildsFreshBlock) {
  if (!DecodeCache::kSuperblocksCompiled) {
    GTEST_SKIP() << "built with -DTOCK_SUPERBLOCKS=OFF";
  }
  // First pass runs _start..beqz as one straight-line block; the second pass
  // jumps into `mid` — the middle of that block, where no block starts — so the
  // builder must lay down a fresh block at mid rather than reuse anything.
  Load(R"(
_start:
    li s0, 0
first:
    addi s0, s0, 1
mid:
    addi s0, s0, 2
    addi s0, s0, 4
    beqz x0, check
check:
    li t0, 10
    bltu s0, t0, tomid
    mv a0, s0
    ecall
tomid:
    j mid
)");
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096, /*superblocks=*/true);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  BatchRun r = RunBatched(&cpu, ctx_);
  ASSERT_EQ(r.status, StepResult::kEcall);
  EXPECT_EQ(ctx_.x[Reg::kA0], 13u);  // 1+2+4 on pass one, +2+4 via mid on pass two

  uint32_t start_idx = (symbols_.at("_start") - kCodeBase) / 4;
  uint32_t mid_idx = (symbols_.at("mid") - kCodeBase) / 4;
  EXPECT_EQ(cache.BlockLenAt(start_idx), 6u);  // li (2 words)..beqz, terminator included
  EXPECT_EQ(cache.BlockLenAt(mid_idx), 3u);    // addi, addi, beqz — built on entry
}

TEST_F(VmTest, SuperblockFaultInsideBlockMatchesStepEngine) {
  // The store faults mid-straight-line: the batch engine must report the same
  // fault at the same pc with the same retire count as the per-insn engine,
  // leaving identical architectural state.
  const char* faulty = R"(
_start:
    li a0, 1
    li a1, 2
    li t3, 0x40000000
    sw a0, 0(t3)
    add a2, a0, a1
    ecall
)";
  Load(faulty);
  ASSERT_EQ(Run(), StepResult::kFault);
  VmFault step_fault = last_fault_;
  CpuContext step_ctx = ctx_;

  Load(faulty);
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096, /*superblocks=*/true);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  BatchRun r = RunBatched(&cpu, ctx_);
  ASSERT_EQ(r.status, StepResult::kFault);
  EXPECT_EQ(cpu.fault().kind, step_fault.kind);
  EXPECT_EQ(cpu.fault().detail, step_fault.detail);
  EXPECT_EQ(cpu.fault().pc, step_fault.pc);
  EXPECT_EQ(ctx_.pc, step_ctx.pc);
  for (int reg = 0; reg < 32; ++reg) {
    EXPECT_EQ(ctx_.x[reg], step_ctx.x[reg]) << "x" << reg;
  }
  EXPECT_EQ(r.executed, 7u);  // three 2-word lis + the faulting store (ticked, not retired)
  EXPECT_EQ(cpu.instructions_retired(), 6u);
}

TEST_F(VmTest, SuperblockReleaseDropsAllBlocksAndMemory) {
  Load(kMixedProgram);
  DecodeCache cache;
  cache.Configure(kCodeBase, 4096, /*superblocks=*/true);
  Cpu cpu(&mcu_.bus());
  cpu.set_decode_cache(&cache);
  ASSERT_EQ(RunBatched(&cpu, ctx_).status, StepResult::kEcall);
  CpuContext first_ctx = ctx_;
  EXPECT_GT(cache.MemoryBytes(), 0u);
  uint32_t live_before = cache.live_blocks();

  // Release is the restart path: every block dies with the tables, and the
  // freed cache must miss harmlessly rather than serve stale pointers.
  EXPECT_EQ(cache.Release(), live_before);
  EXPECT_EQ(cache.live_blocks(), 0u);
  EXPECT_EQ(cache.MemoryBytes(), 0u);
  EXPECT_FALSE(cache.IsConfigured());
  EXPECT_EQ(cache.Lookup(kCodeBase), nullptr);
  if (DecodeCache::kSuperblocksCompiled) {
    EXPECT_GT(live_before, 0u);
  }

  // The cpu still holds the released cache: execution falls back to the checked
  // bus path and reproduces the identical result.
  ctx_ = CpuContext{};
  ctx_.pc = kCodeBase;
  ctx_.x[Reg::kSp] = kRam + 4096;
  ASSERT_EQ(RunBatched(&cpu, ctx_).status, StepResult::kEcall);
  EXPECT_EQ(ctx_.pc, first_ctx.pc);
  for (int reg = 0; reg < 32; ++reg) {
    EXPECT_EQ(ctx_.x[reg], first_ctx.x[reg]) << "x" << reg;
  }
}

}  // namespace
}  // namespace tock
