// Fleet runtime tests (board/fleet.h): the sharded epoch engine must produce
// bit-identical per-board results for any host thread count, the mailbox radio
// must produce identical delivery traces for any stepping slice and board step
// order, and the supervisor must revive wedged boards.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "board/fleet.h"
#include "board/sim_board.h"

namespace tock {
namespace {

// Telemetry beacon: broadcast [node, seq] on a duty cycle, staggered per node.
std::string BeaconApp(int node_id) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
_start:
    mv s0, a0
    li s1, 0
    li a0, %d
    call sleep_ticks
loop:
    li t0, %d
    sb t0, 0(s0)
    sb s1, 1(s0)
    li a0, 0x30001
    li a1, 0
    mv a2, s0
    li a3, 2
    li a4, 4
    ecall
    # command(radio, 1 = tx, dst=broadcast, len=2)
    li a0, 0x30001
    li a1, 1
    li a2, 0xFFFF
    li a3, 2
    li a4, 2
    ecall
    # yield-wait-for(radio, 0 = tx done)
    li a0, 2
    li a1, 0x30001
    li a2, 0
    li a4, 0
    ecall
    addi s1, s1, 1
    li a0, 60000
    call sleep_ticks
    j loop
)",
                node_id * 7000, node_id);
  return buf;
}

// Telemetry sink: listen forever, tally packets at ram+32.
const char* kListenerApp = R"(
_start:
    mv s0, a0
    li a0, 0x30001
    li a1, 1
    addi a2, s0, 64
    li a3, 8
    li a4, 3
    ecall
    # command(radio, 2 = listen)
    li a0, 0x30001
    li a1, 2
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
loop:
    li a0, 2
    li a1, 0x30001
    li a2, 1
    li a4, 0
    ecall
    lw t0, 32(s0)
    addi t0, t0, 1
    sw t0, 32(s0)
    j loop
)";

// An 8-board deployment with heterogeneous seeds, addresses, and scheduler
// policies, every board beaconing to and listening for all the others.
struct TestFleet {
  explicit TestFleet(unsigned threads, uint64_t slice = 20'000) {
    FleetConfig config;
    config.threads = threads;
    config.slice = slice;
    fleet = std::make_unique<Fleet>(config);
    static constexpr SchedulerPolicy kRotation[] = {
        SchedulerPolicy::kRoundRobin, SchedulerPolicy::kPriority, SchedulerPolicy::kMlfq};
    for (size_t i = 0; i < 8; ++i) {
      BoardConfig bc;
      bc.rng_seed = 0xBEEF + static_cast<uint32_t>(i);
      bc.radio_addr = static_cast<uint16_t>(i + 1);
      bc.medium = &fleet->medium();
      bc.kernel.scheduler.policy = kRotation[i % 3];
      bc.allow_scheduler_env = false;
      auto board = std::make_unique<SimBoard>(bc);
      board->radio_hw().EnableDeliveryLog();
      AppSpec beacon;
      beacon.name = "beacon";
      beacon.source = BeaconApp(static_cast<int>(i + 1));
      AppSpec listener;
      listener.name = "listener";
      listener.source = kListenerApp;
      EXPECT_NE(board->installer().Install(beacon), 0u) << board->installer().error();
      EXPECT_NE(board->installer().Install(listener), 0u) << board->installer().error();
      EXPECT_EQ(board->Boot(), 2);
      fleet->AddBoard(board.get());
      boards.push_back(std::move(board));
    }
    fleet->AlignClocks();
  }

  // Everything observable about one board, as one comparable string.
  std::string Fingerprint(size_t i) {
    SimBoard& board = *boards[i];
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "cycles=%llu insns=%llu tx=%llu rx=%llu ovr=%llu\n",
                  static_cast<unsigned long long>(board.mcu().CyclesNow()),
                  static_cast<unsigned long long>(board.kernel().instructions_retired()),
                  static_cast<unsigned long long>(board.radio_hw().packets_sent()),
                  static_cast<unsigned long long>(board.radio_hw().packets_received()),
                  static_cast<unsigned long long>(board.radio_hw().rx_overruns()));
    out += line;
    board.kernel().trace().DumpStats(out);
    board.kernel().trace().DumpTrace(out);
    for (const RadioDeliveryRecord& r : board.radio_hw().delivery_log()) {
      std::snprintf(line, sizeof(line), "deliver cycle=%llu src=%u dst=%u len=%u sum=%u ovr=%d\n",
                    static_cast<unsigned long long>(r.cycle), r.src, r.dst, r.len,
                    r.payload_sum, r.overrun ? 1 : 0);
      out += line;
    }
    return out;
  }

  std::unique_ptr<Fleet> fleet;
  std::vector<std::unique_ptr<SimBoard>> boards;
};

// The tentpole guarantee: an 8-board fleet stepped by 1 host thread and by 4 host
// threads produces bit-identical per-board kernel stats, trace rings, and radio
// delivery logs. (Acceptance criterion: parallelism must not leak into results.)
TEST(FleetDeterminism, ThreadCountInvariant) {
  TestFleet solo(1);
  TestFleet quad(4);
  solo.fleet->Run(600'000);
  quad.fleet->Run(600'000);

  uint64_t total_rx = 0;
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(solo.Fingerprint(i), quad.Fingerprint(i)) << "board " << i;
    total_rx += solo.boards[i]->radio_hw().packets_received();
  }
  // The run must actually exercise cross-board delivery to prove anything.
  EXPECT_GT(total_rx, 0u);

  FleetStats a = solo.fleet->Stats();
  FleetStats b = quad.fleet->Stats();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.aggregate.context_switches, b.aggregate.context_switches);
  EXPECT_EQ(a.boards_live, 8u);
}

// Radio arrival times are computed on the shared timeline at transmit time, so
// the delivery trace cannot depend on the stepping slice: a 1k-cycle slice and a
// 20k-cycle slice (both clamped to the medium lookahead) must land every frame
// at the same cycle with the same payload.
TEST(FleetDeterminism, DeliveryTraceSliceInvariant) {
  TestFleet fine(1, /*slice=*/1'000);
  TestFleet coarse(1, /*slice=*/20'000);
  fine.fleet->Run(600'000);
  coarse.fleet->Run(600'000);

  uint64_t total = 0;
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(fine.boards[i]->radio_hw().delivery_log(),
              coarse.boards[i]->radio_hw().delivery_log())
        << "board " << i;
    total += fine.boards[i]->radio_hw().delivery_log().size();
  }
  EXPECT_GT(total, 0u);
}

// Nor may the order boards are stepped within an epoch matter: registering the
// boards with the fleet in reverse order changes the step order but not one
// delivered byte. (Construction order — and so radio attach order — stays fixed;
// only the step schedule moves.)
TEST(FleetDeterminism, DeliveryTraceStepOrderInvariant) {
  TestFleet forward(1);
  forward.fleet->Run(600'000);

  // Same deployment, boards handed to the fleet back-to-front.
  TestFleet shuffled(1);
  Fleet reordered(FleetConfig{.threads = 1, .medium = &shuffled.fleet->medium()});
  for (size_t i = shuffled.boards.size(); i-- > 0;) {
    reordered.AddBoard(shuffled.boards[i].get());
  }
  reordered.AlignClocks();
  reordered.Run(600'000);

  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(forward.boards[i]->radio_hw().delivery_log(),
              shuffled.boards[i]->radio_hw().delivery_log())
        << "board " << i;
  }
}

// CPU-bound spinner for the skewed-fleet tests: one hot board that never
// sleeps, surrounded by duty-cycled beacons.
const char* kSpinApp = R"(
_start:
    li s0, 0
    li s1, 1
loop:
    add s0, s0, s1
    xor s2, s0, s1
    slli s3, s2, 3
    j loop
)";

// A deliberately imbalanced deployment: board 0 runs a hot spin loop (busy all
// epoch, every epoch) while the rest duty-cycle — beacon, then sleep far past
// the epoch length. Under static sharding the thread that draws board 0 does
// almost all the work; work-stealing and idle-skip exist for exactly this
// shape, and neither may change one observable byte.
struct SkewedFleet {
  static constexpr size_t kBoards = 32;  // 1 hot + 31 duty-cycled

  SkewedFleet(unsigned threads, bool steal, bool idle_skip) {
    FleetConfig config;
    config.threads = threads;
    config.steal = steal;
    config.idle_skip = idle_skip;
    fleet = std::make_unique<Fleet>(config);
    for (size_t i = 0; i < kBoards; ++i) {
      BoardConfig bc;
      bc.rng_seed = 0xFEED + static_cast<uint32_t>(i);
      bc.radio_addr = static_cast<uint16_t>(i + 1);
      bc.medium = &fleet->medium();
      auto board = std::make_unique<SimBoard>(bc);
      board->radio_hw().EnableDeliveryLog();
      int expected = 0;
      if (i == 0) {
        AppSpec spin;
        spin.name = "spin";
        spin.source = kSpinApp;
        spin.include_runtime = false;
        AppSpec listener;
        listener.name = "listener";
        listener.source = kListenerApp;
        EXPECT_NE(board->installer().Install(spin), 0u) << board->installer().error();
        EXPECT_NE(board->installer().Install(listener), 0u)
            << board->installer().error();
        expected = 2;
      } else {
        AppSpec beacon;
        beacon.name = "beacon";
        beacon.source = BeaconApp(static_cast<int>(i + 1));
        EXPECT_NE(board->installer().Install(beacon), 0u) << board->installer().error();
        expected = 1;
      }
      EXPECT_EQ(board->Boot(), expected);
      fleet->AddBoard(board.get());
      boards.push_back(std::move(board));
    }
    fleet->AlignClocks();
  }

  std::string Fingerprint(size_t i) {
    SimBoard& board = *boards[i];
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "cycles=%llu insns=%llu tx=%llu rx=%llu\n",
                  static_cast<unsigned long long>(board.mcu().CyclesNow()),
                  static_cast<unsigned long long>(board.kernel().instructions_retired()),
                  static_cast<unsigned long long>(board.radio_hw().packets_sent()),
                  static_cast<unsigned long long>(board.radio_hw().packets_received()));
    out += line;
    board.kernel().trace().DumpStats(out);
    board.kernel().trace().DumpTrace(out);
    for (const RadioDeliveryRecord& r : board.radio_hw().delivery_log()) {
      std::snprintf(line, sizeof(line), "deliver cycle=%llu src=%u len=%u sum=%u\n",
                    static_cast<unsigned long long>(r.cycle), r.src, r.len,
                    r.payload_sum);
      out += line;
    }
    return out;
  }

  std::unique_ptr<Fleet> fleet;
  std::vector<std::unique_ptr<SimBoard>> boards;
};

// Work-stealing board assignment must be invisible in the results: the skewed
// fleet stepped by 1 thread, by 4 stealing threads, and by 4 statically-sharded
// threads produces bit-identical per-board fingerprints (stats, trace rings,
// delivery logs). This is the tentpole determinism claim for the scale-out
// scheduler.
TEST(FleetDeterminism, WorkStealingSkewedFleetThreadCountInvariant) {
  SkewedFleet solo(1, /*steal=*/true, /*idle_skip=*/true);
  SkewedFleet quad(4, /*steal=*/true, /*idle_skip=*/true);
  SkewedFleet pinned(4, /*steal=*/false, /*idle_skip=*/true);
  solo.fleet->Run(300'000);
  quad.fleet->Run(300'000);
  pinned.fleet->Run(300'000);

  uint64_t total_rx = 0;
  for (size_t i = 0; i < SkewedFleet::kBoards; ++i) {
    std::string expect = solo.Fingerprint(i);
    EXPECT_EQ(expect, quad.Fingerprint(i)) << "board " << i << " (stealing)";
    EXPECT_EQ(expect, pinned.Fingerprint(i)) << "board " << i << " (static)";
    total_rx += solo.boards[i]->radio_hw().packets_received();
  }
  EXPECT_GT(total_rx, 0u);
}

// Idle-board fast-forward must be equally invisible: the same skewed fleet with
// the skip enabled and disabled produces identical fingerprints, and the
// enabled run actually took the shortcut (the host-only fleet.idle_skips
// counter — excluded from the fingerprint's stat dump — is the only trace).
TEST(FleetDeterminism, IdleSkipInvariantAndActuallySkips) {
  SkewedFleet skipping(1, /*steal=*/true, /*idle_skip=*/true);
  SkewedFleet stepping(1, /*steal=*/true, /*idle_skip=*/false);
  skipping.fleet->Run(300'000);
  stepping.fleet->Run(300'000);

  for (size_t i = 0; i < SkewedFleet::kBoards; ++i) {
    EXPECT_EQ(skipping.Fingerprint(i), stepping.Fingerprint(i)) << "board " << i;
  }
  if (KernelConfig::trace_enabled) {
    EXPECT_GT(skipping.fleet->Stats().aggregate.fleet_idle_skips, 0u);
    EXPECT_EQ(stepping.fleet->Stats().aggregate.fleet_idle_skips, 0u);
  }
}

// Supervision: a board whose only process exits is wedged (no runnable process,
// no future event). With restart_wedged set, the fleet revives it through the
// capability-gated restart path after the grace period — repeatedly.
TEST(FleetSupervision, RestartsWedgedBoard) {
  FleetConfig config;
  config.restart_wedged = true;
  config.wedge_grace_epochs = 2;
  Fleet fleet(config);

  BoardConfig bc;
  SimBoard board(bc);
  AppSpec app;
  app.name = "mayfly";
  app.source = R"(
_start:
    li a0, 500
    call sleep_ticks
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  fleet.AddBoard(&board);
  fleet.Run(400'000);

  EXPECT_GT(fleet.health(0).wedge_events, 0u);
  EXPECT_GT(fleet.health(0).supervised_restarts, 1u);
  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.supervised_restarts, fleet.health(0).supervised_restarts);
  // Every revival re-runs the app from _start: the restart count shows up as
  // repeated process work, not just a counter. (Kernel counters are compiled
  // out under -DTOCK_TRACE=OFF; the fleet-side ledger above is always live.)
  if (KernelConfig::trace_enabled) {
    EXPECT_GT(stats.aggregate.process_restarts, 0u);
  }
}

// Without supervision the board stays wedged and merely coasts to the target.
TEST(FleetSupervision, WedgedBoardWithoutRestartStaysDown) {
  Fleet fleet;
  BoardConfig bc;
  SimBoard board(bc);
  AppSpec app;
  app.name = "mayfly";
  app.source = R"(
_start:
    li a0, 0
    call tock_exit_terminate
)";
  ASSERT_NE(board.installer().Install(app), 0u) << board.installer().error();
  ASSERT_EQ(board.Boot(), 1);
  fleet.AddBoard(&board);
  fleet.Run(100'000);

  EXPECT_GT(fleet.health(0).wedge_events, 0u);
  EXPECT_EQ(fleet.health(0).supervised_restarts, 0u);
  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.boards_live, 0u);
}

// BoardConfig::allow_scheduler_env: the TOCK_SCHED_POLICY override applies only
// to boards that did not make an explicit policy choice.
TEST(FleetConfigTest, SchedulerEnvOptOut) {
  // Save the ambient override (scripts/check_matrix.sh runs the whole suite with
  // TOCK_SCHED_POLICY=cooperative) so later tests still see it.
  const char* ambient = std::getenv("TOCK_SCHED_POLICY");
  std::string saved = ambient != nullptr ? ambient : "";
  ASSERT_EQ(setenv("TOCK_SCHED_POLICY", "mlfq", /*overwrite=*/1), 0);

  BoardConfig defaulted;  // allow_scheduler_env = true
  SimBoard follower(defaulted);
  EXPECT_EQ(follower.kernel().scheduler_policy(), SchedulerPolicy::kMlfq);

  BoardConfig explicit_choice;
  explicit_choice.kernel.scheduler.policy = SchedulerPolicy::kPriority;
  explicit_choice.allow_scheduler_env = false;
  SimBoard holdout(explicit_choice);
  EXPECT_EQ(holdout.kernel().scheduler_policy(), SchedulerPolicy::kPriority);

  if (ambient != nullptr) {
    setenv("TOCK_SCHED_POLICY", saved.c_str(), /*overwrite=*/1);
  } else {
    unsetenv("TOCK_SCHED_POLICY");
  }
}

}  // namespace
}  // namespace tock
