// Seeded fault-injection soak (§2.3, §2.4).
//
// Runs many two-app campaigns. Each campaign boots a victim and a peer, both
// doing syscall work in a loop, gives the victim a Restart fault policy, and
// injects a seed-derived schedule of CPU faults (MPU violations and illegal
// instructions at random instruction counts). After EVERY injected fault the
// four isolation invariants are asserted:
//
//   1. the peer keeps making syscall progress through the victim's death,
//      backoff window, and revival;
//   2. the victim's grant memory is fully reclaimed at death (grant_break back
//      to the top of its quota) and the peer's grant bytes are untouched,
//      byte for byte;
//   3. the victim's upcall queue is scrubbed;
//   4. the kernel's fault/restart counters exactly match the injector's audit
//      counters — every injected fault is accounted for, nothing more.
//
// Everything is cycle-deterministic: a failing seed reproduces exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "board/sim_board.h"
#include "kernel/fault_injector.h"
#include "kernel/grant.h"
#include "kernel/sched/mlfq.h"
#include "kernel/scheduler.h"

namespace tock {
namespace {

// Both apps count iterations in RAM and make one yield-no-wait syscall per loop,
// so syscall_count measures forward progress.
const std::string kWorkerApp = R"(
_start:
    mv s0, a0
loop:
    lw t0, 0(s0)
    addi t0, t0, 1
    sw t0, 0(s0)
    li a0, 0
    li a4, 0
    ecall
    j loop
)";

constexpr int kCampaigns = 64;
constexpr uint32_t kMaxRestarts = 16;
constexpr uint32_t kBackoffBase = 500'000;   // large enough to observe the parked state
constexpr uint32_t kBackoffCap = 4'000'000;
constexpr uint64_t kRunSlice = 20'000;       // well under the backoff base

struct PeerPattern {
  uint8_t bytes[48];
};

// Lifetime-counter reconciliation: allocations minus recorded frees must equal
// the live grant bytes summed over every PCB, at any quiescent point — including
// across fault/restart cycles, where the free is recorded at grant reclaim.
void ExpectGrantBytesReconcile(Kernel& kernel) {
  if (!KernelTrace::kEnabled) {
    return;  // the counters are compiled out under TOCK_TRACE=OFF
  }
  uint64_t live = 0;
  for (size_t i = 0; i < Kernel::kMaxProcesses; ++i) {
    live += kernel.process(i)->grant_bytes_live;
  }
  EXPECT_EQ(kernel.stats().grant_bytes - kernel.stats().grant_bytes_freed, live)
      << "grant_bytes/grant_bytes_freed do not reconcile to live usage";
}

void RunCampaign(uint64_t seed,
                 SchedulerPolicy policy = SchedulerPolicy::kRoundRobin) {
  SCOPED_TRACE(std::string("campaign seed ") + std::to_string(seed) + " policy " +
               SchedulerPolicyName(policy));

  BoardConfig config;
  config.fault_injection_seed = seed;
  config.kernel.scheduler.policy = policy;
  // Both workers are CPU-bound (yield-no-wait never blocks), so under MLFQ both
  // sink to the bottom level and only the periodic boost keeps the rotation
  // honest. Shrink the period so every campaign exercises it.
  config.kernel.scheduler.mlfq_boost_period_cycles = 250'000;
  SimBoard board(config);
  AppSpec victim;
  victim.name = "victim";
  victim.source = kWorkerApp;
  AppSpec peer;
  peer.name = "peer";
  peer.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(victim), 0u);
  ASSERT_NE(board.installer().Install(peer), 0u);
  ASSERT_EQ(board.Boot(), 2);

  Process* v = board.kernel().process(0);
  Process* p = board.kernel().process(1);
  FaultInjector& injector = board.fault_injector();
  const Kernel& kernel = board.kernel();

  ASSERT_TRUE(board.kernel()
                  .SetFaultPolicy(v->id,
                                  FaultPolicy::Restart(kMaxRestarts, kBackoffBase, kBackoffCap),
                                  board.pm_cap())
                  .ok());

  // Let both workers get going, then give each a grant allocation. The peer's is
  // filled with a seed-derived pattern we hold the campaign accountable for.
  board.Run(200'000);
  ASSERT_GT(v->syscall_count, 0u);
  ASSERT_GT(p->syscall_count, 0u);

  CapabilityFactory factory;
  auto mem_cap = factory.MintMemoryAllocation();
  Grant<PeerPattern> grant(&board.kernel(), mem_cap);
  uint8_t fill = static_cast<uint8_t>(injector.RandomInRange(1, 255));
  ASSERT_TRUE(grant
                  .Enter(p->id,
                         [&](PeerPattern& pat) {
                           for (size_t i = 0; i < sizeof(pat.bytes); ++i) {
                             pat.bytes[i] = static_cast<uint8_t>(fill + i);
                           }
                         })
                  .ok());
  ASSERT_TRUE(grant.Enter(v->id, [](PeerPattern&) {}).ok());
  ASSERT_LT(v->grant_break, v->ram_start + v->ram_size);  // victim really holds grant memory

  std::vector<uint8_t> peer_grant_image(p->ram_start + p->ram_size - p->grant_break);
  uint32_t peer_grant_base = p->grant_break;
  ASSERT_TRUE(
      board.mcu().bus().ReadBlock(peer_grant_base, peer_grant_image.data(), peer_grant_image.size()));

  const uint64_t rounds = injector.RandomInRange(1, 3);
  for (uint64_t round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));

    VmFault::Kind kind = injector.NextRandom() % 2 == 0 ? VmFault::Kind::kBus
                                                        : VmFault::Kind::kIllegalInstruction;
    injector.ArmCpuFault(0, injector.RandomInRange(50, 5'000), kind);

    // Run in slices until the fault fires. Slices are much smaller than the
    // backoff, so we always observe the victim parked in kRestartPending. The
    // injector's own audit counter is the guard (KernelStats may be compiled out).
    uint64_t peer_before = p->syscall_count;
    int guard = 2'000;
    while (injector.armed_cpu_faults() > 0 && guard-- > 0) {
      board.Run(kRunSlice);
    }
    ASSERT_EQ(injector.armed_cpu_faults(), 0u) << "injected fault never fired";

    // Invariant 3 + the victim half of invariant 2: at death, all dynamic kernel
    // state of the victim is reclaimed and the revival is scheduled, not done.
    ASSERT_EQ(v->state, ProcessState::kRestartPending);
    EXPECT_EQ(v->grant_break, v->ram_start + v->ram_size) << "grant bytes not fully reclaimed";
    EXPECT_TRUE(v->upcall_queue.IsEmpty()) << "upcall queue not scrubbed";
    EXPECT_EQ(v->fault_info.vm_fault.kind, kind);
    ASSERT_GT(v->restart_due_cycle, board.mcu().CyclesNow());

    // Invariant 1: the peer made progress while the victim died...
    EXPECT_GT(p->syscall_count, peer_before) << "peer starved during victim fault";

    // ...and keeps making progress across the whole backoff window and revival.
    peer_before = p->syscall_count;
    board.Run(v->restart_due_cycle - board.mcu().CyclesNow() + 100'000);
    EXPECT_GT(p->syscall_count, peer_before) << "peer starved during backoff";
    ASSERT_TRUE(v->IsAlive()) << "victim was not revived";

    // The revived victim itself makes progress again.
    uint64_t victim_before = v->syscall_count;
    board.Run(200'000);
    EXPECT_GT(v->syscall_count, victim_before) << "revived victim made no progress";

    // Invariant 2, peer half: its grant memory is byte-for-byte unaffected.
    std::vector<uint8_t> now_image(peer_grant_image.size());
    ASSERT_TRUE(board.mcu().bus().ReadBlock(peer_grant_base, now_image.data(), now_image.size()));
    EXPECT_EQ(std::memcmp(peer_grant_image.data(), now_image.data(), peer_grant_image.size()), 0)
        << "peer grant memory changed across victim fault";

    // The victim's reclaimed bytes were recorded as freed; the books balance at
    // the parked state, after revival, and after the re-allocation below.
    ExpectGrantBytesReconcile(board.kernel());

    // Re-establish the victim's grant footprint for the next round (its id has a
    // new generation after the restart).
    ASSERT_TRUE(grant.Enter(v->id, [](PeerPattern&) {}).ok());
    ExpectGrantBytesReconcile(board.kernel());
  }

  // Invariant 4: counters reconcile exactly against the injected schedule.
  EXPECT_EQ(injector.cpu_faults_injected(), rounds);
  if (KernelTrace::kEnabled) {
    EXPECT_EQ(kernel.stats().process_faults, rounds);
    EXPECT_EQ(kernel.stats().process_restarts, rounds);
  }
  EXPECT_EQ(v->restart_count, rounds);
  EXPECT_EQ(injector.armed_cpu_faults(), 0u);

  // Under MLFQ the anti-starvation boost must actually have fired — the peer
  // progress asserted above was earned by the machinery, not by luck.
  if (policy == SchedulerPolicy::kMlfq) {
    const auto& mlfq = static_cast<const MlfqScheduler&>(board.kernel().scheduler());
    EXPECT_GT(mlfq.boosts(), 0u) << "boost period never elapsed during the campaign";
  }
}

TEST(FaultSoak, SixtyFourSeededCampaignsHoldAllIsolationInvariants) {
  for (int seed = 1; seed <= kCampaigns; ++seed) {
    RunCampaign(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) {
      return;  // the SCOPED_TRACE of the failing seed is already in the output
    }
  }
}

// The isolation invariants are policy-independent: the same campaigns must hold
// under the priority scheduler (equal priorities, so the dispatch-stamp rotation
// is what keeps the peer fed) and under MLFQ (both workers sink to the bottom
// level; the periodic boost is what prevents starvation — asserted directly).
TEST(FaultSoak, SixteenCampaignsHoldInvariantsUnderPriorityPolicy) {
  for (int seed = 1; seed <= 16; ++seed) {
    RunCampaign(static_cast<uint64_t>(seed), SchedulerPolicy::kPriority);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(FaultSoak, SixteenCampaignsHoldInvariantsUnderMlfqPolicy) {
  for (int seed = 1; seed <= 16; ++seed) {
    RunCampaign(static_cast<uint64_t>(seed), SchedulerPolicy::kMlfq);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace tock
